package santos

import (
	"fmt"
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
)

func santosSig(rs []Result) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s|%.12f|%d;", r.Table.Name, r.Score, r.MatchedColumn)
	}
	return s
}

// TestAddMatchesRebuild pins incremental annotation: building over two
// tables and adding a third must answer exactly like building over all
// three (the per-table graphs are independent; annotation runs against the
// same compiled KB snapshot).
func TestAddMatchesRebuild(t *testing.T) {
	all := append(paperdata.CovidLake(), paperdata.T1())
	grown := Build(all[:2], kb.Demo())
	grown.Add(all[2:])
	fresh := Build(all, kb.Demo())
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	got, err := grown.Query(q, city, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Query(q, city, 10)
	if err != nil {
		t.Fatal(err)
	}
	if santosSig(got) != santosSig(want) {
		t.Errorf("incremental add diverged:\n got %s\nwant %s", santosSig(got), santosSig(want))
	}
	if grown.NumTables() != 3 {
		t.Errorf("NumTables = %d", grown.NumTables())
	}
}

func TestRemoveEvictsGraph(t *testing.T) {
	ix := demoIndex()
	if n := ix.Remove([]string{"T2", "absent"}); n != 1 {
		t.Fatalf("Remove = %d, want 1", n)
	}
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	got, err := ix.Query(q, city, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Table.Name == "T2" {
			t.Error("removed table still returned")
		}
	}
	if ix.NumTables() != 1 {
		t.Errorf("NumTables = %d, want 1", ix.NumTables())
	}
}
