// Package santos implements relationship-based semantic table union search
// in the style of SANTOS (Khatiwada et al., SIGMOD 2023), the unionable
// discovery method DIALITE exposes. A table is unionable with the query
// when it describes the same *kind* of entities (column semantic types
// agree) related in the same *way* (column-pair relationship semantics
// agree), anchored at a user-chosen intent column.
//
// Semantics come from a knowledge base (see package kb): the curated demo
// KB plays the role SANTOS assigns to YAGO, and a KB synthesized from the
// lake itself covers domains without curated entries. The two are merged by
// the caller (kb.Merge) or used individually.
package santos

import (
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/par"
	"repro/internal/table"
)

// edge is one relationship incident to a column, direction-normalized:
// "out:" edges leave the column, "in:" edges arrive at it, and the far
// endpoint is identified by its semantic type only (column positions are
// meaningless across lake tables).
type edge struct {
	key        string // "out:<label>:<otherType>" or "in:<label>:<otherType>"
	confidence float64
}

// columnSemantics is the annotation of one column of one table.
type columnSemantics struct {
	col   int
	ann   kb.ColumnAnnotation
	edges []edge
}

// tableSemantics is the semantic graph of one table.
type tableSemantics struct {
	t    *table.Table
	cols []columnSemantics
}

// Index is an immutable SANTOS index over a data lake: every table's
// semantic graph, precomputed offline as the demo's preprocessing step.
type Index struct {
	knowledge *kb.KB
	tables    []tableSemantics
}

// Build annotates every lake table against the knowledge base. Tables
// without any annotated column are indexed but can never match.
// Annotation is per-table pure work over a read-only KB, so tables are
// annotated in parallel; slot-indexed results keep the index order — and
// therefore query results — identical to a sequential build.
func Build(lakeTables []*table.Table, knowledge *kb.KB) *Index {
	ix := &Index{knowledge: knowledge, tables: make([]tableSemantics, len(lakeTables))}
	par.For(len(lakeTables), func(i int) {
		ix.tables[i] = annotate(lakeTables[i], knowledge)
	})
	return ix
}

// NumTables reports how many tables are indexed.
func (ix *Index) NumTables() int { return len(ix.tables) }

// annotate computes the semantic graph of a table.
func annotate(t *table.Table, knowledge *kb.KB) tableSemantics {
	ts := tableSemantics{t: t}
	anns := make([]kb.ColumnAnnotation, t.NumCols())
	textual := make([]bool, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		if !kb.MostlyTextual(t, c) {
			continue
		}
		textual[c] = true
		anns[c] = knowledge.AnnotateColumn(t.DistinctStrings(c))
	}
	edgesByCol := make(map[int][]edge)
	for a := 0; a < t.NumCols(); a++ {
		if !textual[a] || anns[a].Type == "" {
			continue
		}
		for b := a + 1; b < t.NumCols(); b++ {
			if !textual[b] || anns[b].Type == "" {
				continue
			}
			pairs := rowPairs(t, a, b)
			pa := knowledge.AnnotateColumnPair(pairs)
			if pa.Label == "" {
				continue
			}
			// Normalize direction: with Inverse=false the relation runs
			// a -> b; with Inverse=true it runs b -> a.
			from, to := a, b
			if pa.Inverse {
				from, to = b, a
			}
			edgesByCol[from] = append(edgesByCol[from], edge{
				key:        fmt.Sprintf("out:%s:%s", pa.Label, anns[to].Type),
				confidence: pa.Confidence,
			})
			edgesByCol[to] = append(edgesByCol[to], edge{
				key:        fmt.Sprintf("in:%s:%s", pa.Label, anns[from].Type),
				confidence: pa.Confidence,
			})
		}
	}
	for c := 0; c < t.NumCols(); c++ {
		if anns[c].Type == "" {
			continue
		}
		ts.cols = append(ts.cols, columnSemantics{col: c, ann: anns[c], edges: edgesByCol[c]})
	}
	return ts
}

// rowPairs extracts row-aligned (a,b) string pairs where both cells are
// non-null.
func rowPairs(t *table.Table, a, b int) [][2]string {
	var out [][2]string
	for _, row := range t.Rows {
		if row[a].IsNull() || row[b].IsNull() {
			continue
		}
		out = append(out, [2]string{row[a].String(), row[b].String()})
	}
	return out
}

// supertypeDecay is the type-match score multiplier per hierarchy hop when
// the query and candidate column types differ but one subsumes the other.
const supertypeDecay = 0.5

// typeMatchScore scores how well candidate type ct matches query type qt.
func typeMatchScore(knowledge *kb.KB, qt, ct string) float64 {
	if qt == ct {
		return 1
	}
	w := 1.0
	for _, anc := range knowledge.Ancestors(ct) {
		w *= supertypeDecay
		if anc == qt {
			return w
		}
	}
	w = 1.0
	for _, anc := range knowledge.Ancestors(qt) {
		w *= supertypeDecay
		if anc == ct {
			return w
		}
	}
	return 0
}

// edgeJaccard computes the Jaccard similarity of two edge sets by key.
func edgeJaccard(a, b []edge) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	as := make(map[string]bool, len(a))
	for _, e := range a {
		as[e.key] = true
	}
	bs := make(map[string]bool, len(b))
	for _, e := range b {
		bs[e.key] = true
	}
	inter := 0
	for k := range as {
		if bs[k] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Result is one ranked unionable table.
type Result struct {
	Table *table.Table
	Score float64
	// MatchedColumn is the candidate column matched to the intent column.
	MatchedColumn int
}

// Query ranks lake tables by semantic unionability with the query table,
// anchored at intentCol (the demo's "intent column"). The score of a
// candidate column c against the query's intent column q is
//
//	conf(q)·conf(c)·typeMatch(q,c) · (1 + relationshipJaccard(q,c))
//
// and a table scores the maximum over its columns. Tables scoring zero
// (no type-compatible column) are omitted. k<=0 returns all matches.
func (ix *Index) Query(q *table.Table, intentCol int, k int) ([]Result, error) {
	if intentCol < 0 || intentCol >= q.NumCols() {
		return nil, fmt.Errorf("santos: intent column %d out of range for table %q with %d columns", intentCol, q.Name, q.NumCols())
	}
	qs := annotate(q, ix.knowledge)
	var qcs *columnSemantics
	for i := range qs.cols {
		if qs.cols[i].col == intentCol {
			qcs = &qs.cols[i]
		}
	}
	if qcs == nil {
		return nil, fmt.Errorf("santos: intent column %d of table %q has no semantic annotation (textual KB-covered column required)", intentCol, q.Name)
	}
	var results []Result
	for i := range ix.tables {
		cand := &ix.tables[i]
		if cand.t.Name == q.Name {
			continue // never return the query itself
		}
		best := 0.0
		bestCol := -1
		for j := range cand.cols {
			cc := &cand.cols[j]
			tm := typeMatchScore(ix.knowledge, qcs.ann.Type, cc.ann.Type)
			if tm == 0 {
				continue
			}
			score := qcs.ann.Confidence * cc.ann.Confidence * tm * (1 + edgeJaccard(qcs.edges, cc.edges))
			if score > best {
				best = score
				bestCol = cc.col
			}
		}
		if best > 0 {
			results = append(results, Result{Table: cand.t, Score: best, MatchedColumn: bestCol})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Table.Name < results[b].Table.Name
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}
