// Package santos implements relationship-based semantic table union search
// in the style of SANTOS (Khatiwada et al., SIGMOD 2023), the unionable
// discovery method DIALITE exposes. A table is unionable with the query
// when it describes the same *kind* of entities (column semantic types
// agree) related in the same *way* (column-pair relationship semantics
// agree), anchored at a user-chosen intent column.
//
// Semantics come from a knowledge base (see package kb): the curated demo
// KB plays the role SANTOS assigns to YAGO, and a KB synthesized from the
// lake itself covers domains without curated entries. The two are merged by
// the caller (kb.Merge) or used individually.
//
// Annotation runs on the compiled KB (kb.Compile): cell values resolve to
// integer annotation codes through a kb.Annotator — shared lake-wide when
// built through lake.New, so each distinct lake value is canonicalized
// exactly once — and column/pair votes run over dense type and label IDs
// with pooled scratch, never re-walking the type hierarchy or building
// string keys per row pair.
package santos

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kb"
	"repro/internal/par"
	"repro/internal/table"
)

// edgeIn is the direction bit of a packed edge key: set for edges arriving
// at the column, clear for edges leaving it.
const edgeIn = uint64(1) << 63

// edgeKeyID packs one relationship incident to a column, direction-
// normalized — the far endpoint is identified by its semantic type only
// (column positions are meaningless across lake tables). Layout: bit 63 is
// the direction, bits 62..32 the compiled label ID, bits 31..0 the other
// endpoint's compiled type ID (kb.Compile guards both below 2^31). Distinct
// (direction, label, type) triples always pack to distinct keys — unlike
// the string form "out:<label>:<type>", which could collide on labels
// containing the delimiter — and compiled IDs are deterministic, so keys
// are stable across runs.
func edgeKeyID(in bool, label, otherType uint32) uint64 {
	k := uint64(label)<<32 | uint64(otherType)
	if in {
		k |= edgeIn
	}
	return k
}

// columnSemantics is the annotation of one column of one table. edges is
// the column's incident relationship set as sorted, deduplicated packed
// keys.
type columnSemantics struct {
	col    int
	ann    kb.ColumnAnnotation
	typeID uint32
	edges  []uint64
}

// tableSemantics is the semantic graph of one table.
type tableSemantics struct {
	t    *table.Table
	cols []columnSemantics
}

// Index is a SANTOS index over a data lake: every table's semantic graph,
// precomputed offline as the demo's preprocessing step. The index is
// mutable — Add annotates and appends tables, Remove evicts their semantic
// graphs — but always against the KB snapshot compiled at build time (see
// BuildWithAnnotator). Mutations take the write lock, queries the read
// lock.
type Index struct {
	mu      sync.RWMutex
	ann     *kb.Annotator
	scratch sync.Pool // *kb.Scratch
	tables  []tableSemantics
}

// Build annotates every lake table against the knowledge base through a
// private annotation cache. Lake preprocessing uses BuildWithAnnotator to
// share the lake-wide cache instead.
func Build(lakeTables []*table.Table, knowledge *kb.KB) *Index {
	if knowledge == nil {
		knowledge = kb.New()
	}
	return BuildWithAnnotator(lakeTables, kb.NewAnnotator(knowledge.Compiled(), nil))
}

// BuildWithAnnotator annotates every lake table through the given
// annotation cache (the lake's dict-backed cache, when built through
// lake.New). Tables without any annotated column are indexed but can never
// match. Annotation is per-table pure work over the immutable compiled KB,
// so tables are annotated in parallel; slot-indexed results keep the index
// order — and therefore query results — identical to a sequential build.
//
// The index snapshots the KB as compiled at build time: queries and the
// indexed semantic graphs always share one KB state. Mutating the source
// KB after Build does not affect this index (it never re-annotated the
// indexed tables anyway); rebuild to pick up KB changes.
func BuildWithAnnotator(lakeTables []*table.Table, ann *kb.Annotator) *Index {
	ix := &Index{ann: ann, tables: make([]tableSemantics, len(lakeTables))}
	ix.scratch.New = func() any { return ann.Compiled().NewScratch() }
	par.For(len(lakeTables), func(i int) {
		s := ix.scratch.Get().(*kb.Scratch)
		ix.tables[i] = annotate(lakeTables[i], ann, s)
		ix.scratch.Put(s)
	})
	return ix
}

// NumTables reports how many tables are indexed.
func (ix *Index) NumTables() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.tables)
}

// Add annotates the given tables against the index's build-time KB snapshot
// (through the shared annotation cache, so lake values resolve to cached
// codes) and appends their semantic graphs. Callers are responsible for
// name uniqueness, as with Build. Add is exclusive with queries and other
// mutations.
func (ix *Index) Add(lakeTables []*table.Table) {
	if len(lakeTables) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	added := make([]tableSemantics, len(lakeTables))
	par.For(len(lakeTables), func(i int) {
		s := ix.scratch.Get().(*kb.Scratch)
		added[i] = annotate(lakeTables[i], ix.ann, s)
		ix.scratch.Put(s)
	})
	ix.tables = append(ix.tables, added...)
}

// Remove evicts the semantic graphs of the named tables and reports how
// many were dropped; unknown names are ignored. Remove is exclusive with
// queries and other mutations.
func (ix *Index) Remove(names []string) int {
	if len(names) == 0 {
		return 0
	}
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		doomed[n] = true
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	kept := make([]tableSemantics, 0, len(ix.tables))
	for _, ts := range ix.tables {
		if !doomed[ts.t.Name] {
			kept = append(kept, ts)
		}
	}
	removed := len(ix.tables) - len(kept)
	ix.tables = kept
	return removed
}

// annotate computes the semantic graph of a table over annotation codes.
func annotate(t *table.Table, ann *kb.Annotator, s *kb.Scratch) tableSemantics {
	ck := ann.Compiled()
	ts := tableSemantics{t: t}
	nc := t.NumCols()
	anns := make([]kb.ColumnAnnotation, nc)
	typeIDs := make([]uint32, nc)
	rowCodes := make([][]uint32, nc)
	for c := 0; c < nc; c++ {
		cc := ann.ColumnCodes(t, c, s)
		if cc.Rows == nil {
			continue // not mostly textual: no entity semantics
		}
		rowCodes[c] = cc.Rows
		anns[c], typeIDs[c] = ck.AnnotateColumnCodes(cc.Distinct, s)
	}
	edgesByCol := make(map[int][]uint64)
	for a := 0; a < nc; a++ {
		if rowCodes[a] == nil || anns[a].Type == "" {
			continue
		}
		for b := a + 1; b < nc; b++ {
			if rowCodes[b] == nil || anns[b].Type == "" {
				continue
			}
			pa, labelID := ck.AnnotatePairCodes(rowCodes[a], rowCodes[b], s)
			if pa.Label == "" {
				continue
			}
			// Normalize direction: with Inverse=false the relation runs
			// a -> b; with Inverse=true it runs b -> a.
			from, to := a, b
			if pa.Inverse {
				from, to = b, a
			}
			edgesByCol[from] = append(edgesByCol[from], edgeKeyID(false, labelID, typeIDs[to]))
			edgesByCol[to] = append(edgesByCol[to], edgeKeyID(true, labelID, typeIDs[from]))
		}
	}
	for c := 0; c < nc; c++ {
		if anns[c].Type == "" {
			continue
		}
		ts.cols = append(ts.cols, columnSemantics{
			col:    c,
			ann:    anns[c],
			typeID: typeIDs[c],
			edges:  sortedUnique(edgesByCol[c]),
		})
	}
	return ts
}

// sortedUnique sorts keys ascending and removes duplicates in place,
// turning an edge list into the canonical set form edgeJaccard merges.
func sortedUnique(keys []uint64) []uint64 {
	if len(keys) < 2 {
		return keys
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// rowPairs extracts row-aligned (a,b) string pairs where both cells are
// non-null. It is retained as part of the string reference path the
// cross-check suite pins the compiled engine against.
func rowPairs(t *table.Table, a, b int) [][2]string {
	var out [][2]string
	for _, row := range t.Rows {
		if row[a].IsNull() || row[b].IsNull() {
			continue
		}
		out = append(out, [2]string{row[a].String(), row[b].String()})
	}
	return out
}

// supertypeDecay is the type-match score multiplier per hierarchy hop when
// the query and candidate column types differ but one subsumes the other.
const supertypeDecay = 0.5

// typeMatchScore scores how well candidate type ct matches query type qt,
// walking the string hierarchy. Reference implementation for the
// cross-check suite; queries use typeMatchScoreID.
func typeMatchScore(knowledge *kb.KB, qt, ct string) float64 {
	if qt == ct {
		return 1
	}
	w := 1.0
	for _, anc := range knowledge.Ancestors(ct) {
		w *= supertypeDecay
		if anc == qt {
			return w
		}
	}
	w = 1.0
	for _, anc := range knowledge.Ancestors(qt) {
		w *= supertypeDecay
		if anc == ct {
			return w
		}
	}
	return 0
}

// typeMatchScoreID is typeMatchScore over compiled type IDs (type IDs are
// unique per type name, and compiled ancestor chains replicate the string
// walk, so the score is identical).
func typeMatchScoreID(ck *kb.Compiled, qt, ct uint32) float64 {
	if qt == ct {
		return 1
	}
	w := 1.0
	for _, anc := range ck.AncestorIDs(ct) {
		w *= supertypeDecay
		if anc == qt {
			return w
		}
	}
	w = 1.0
	for _, anc := range ck.AncestorIDs(qt) {
		w *= supertypeDecay
		if anc == ct {
			return w
		}
	}
	return 0
}

// edgeJaccard computes the Jaccard similarity of two edge-key sets, both
// already in canonical sorted-unique form, with an allocation-free linear
// merge.
func edgeJaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Result is one ranked unionable table.
type Result struct {
	Table *table.Table
	Score float64
	// MatchedColumn is the candidate column matched to the intent column.
	MatchedColumn int
}

// Query ranks lake tables by semantic unionability with the query table,
// anchored at intentCol (the demo's "intent column"). The score of a
// candidate column c against the query's intent column q is
//
//	conf(q)·conf(c)·typeMatch(q,c) · (1 + relationshipJaccard(q,c))
//
// and a table scores the maximum over its columns. Tables scoring zero
// (no type-compatible column) are omitted. k<=0 returns all matches.
//
// The query table is annotated through a transient scope of the index's
// shared annotation cache: lake tables resolve entirely from cached codes,
// while foreign query values are canonicalized per query and reclaimed, so
// query traffic never grows the shared cache.
func (ix *Index) Query(q *table.Table, intentCol int, k int) ([]Result, error) {
	return ix.QueryCtx(context.Background(), q, intentCol, k)
}

// scoreCancelStride bounds how many candidate tables are scored between two
// context checks in QueryCtx.
const scoreCancelStride = 64

// QueryCtx is Query with cooperative cancellation: the candidate scoring
// scan checks ctx every scoreCancelStride tables and returns
// (nil, ctx.Err()) once the context is cancelled. Uncancelled results are
// byte-identical to Query.
func (ix *Index) QueryCtx(ctx context.Context, q *table.Table, intentCol int, k int) ([]Result, error) {
	if intentCol < 0 || intentCol >= q.NumCols() {
		return nil, fmt.Errorf("santos: intent column %d out of range for table %q with %d columns", intentCol, q.Name, q.NumCols())
	}
	// Query values resolve through a per-query scope: lake values hit the
	// shared bounded cache, foreign query strings are reclaimed with the
	// scope instead of accumulating in the lake-wide annotator.
	s := ix.scratch.Get().(*kb.Scratch)
	qs := annotate(q, ix.ann.QueryScope(), s)
	ix.scratch.Put(s)
	var qcs *columnSemantics
	for i := range qs.cols {
		if qs.cols[i].col == intentCol {
			qcs = &qs.cols[i]
		}
	}
	if qcs == nil {
		return nil, fmt.Errorf("santos: intent column %d of table %q has no semantic annotation (textual KB-covered column required)", intentCol, q.Name)
	}
	ck := ix.ann.Compiled()
	done := ctx.Done()
	var results []Result
	// The candidate scan holds the read lock: mutations swap or append to
	// ix.tables, and scoring reads only immutable per-table graphs.
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for i := range ix.tables {
		if done != nil && i%scoreCancelStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		cand := &ix.tables[i]
		if cand.t.Name == q.Name {
			continue // never return the query itself
		}
		best := 0.0
		bestCol := -1
		for j := range cand.cols {
			cc := &cand.cols[j]
			tm := typeMatchScoreID(ck, qcs.typeID, cc.typeID)
			if tm == 0 {
				continue
			}
			score := qcs.ann.Confidence * cc.ann.Confidence * tm * (1 + edgeJaccard(qcs.edges, cc.edges))
			if score > best {
				best = score
				bestCol = cc.col
			}
		}
		if best > 0 {
			results = append(results, Result{Table: cand.t, Score: best, MatchedColumn: bestCol})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Table.Name < results[b].Table.Name
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}
