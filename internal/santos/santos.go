// Package santos implements relationship-based semantic table union search
// in the style of SANTOS (Khatiwada et al., SIGMOD 2023), the unionable
// discovery method DIALITE exposes. A table is unionable with the query
// when it describes the same *kind* of entities (column semantic types
// agree) related in the same *way* (column-pair relationship semantics
// agree), anchored at a user-chosen intent column.
//
// Semantics come from a knowledge base (see package kb): the curated demo
// KB plays the role SANTOS assigns to YAGO, and a KB synthesized from the
// lake itself covers domains without curated entries. The two are merged by
// the caller (kb.Merge) or used individually.
package santos

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/kb"
	"repro/internal/par"
	"repro/internal/table"
)

// symtab interns the relationship labels and semantic-type names edges are
// built from into dense uint32 IDs, so edge identity is integer comparison
// instead of string concatenation and hashing. One symtab is shared by a
// SANTOS index's build-time and query-time annotation, keeping IDs — and
// therefore packed edge keys — comparable across both. Safe for concurrent
// use (tables annotate in parallel).
type symtab struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

func newSymtab() *symtab { return &symtab{ids: make(map[string]uint32)} }

// intern returns the dense ID of s, assigning one on first sight. IDs stay
// below 2^31 so packed edge keys keep the direction bit and the label/type
// split collision-free; a lake would need billions of distinct labels or
// types to trip the guard.
func (st *symtab) intern(s string) uint32 {
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	if uint64(len(st.ids)) >= 1<<31 {
		panic("santos: symbol table full: more than 2^31 distinct labels/types")
	}
	id = uint32(len(st.ids))
	st.ids[s] = id
	return id
}

// edgeIn is the direction bit of a packed edge key: set for edges arriving
// at the column, clear for edges leaving it.
const edgeIn = uint64(1) << 63

// edgeKey packs one relationship incident to a column, direction-normalized
// — the far endpoint is identified by its semantic type only (column
// positions are meaningless across lake tables). Layout: bit 63 is the
// direction, bits 62..32 the label ID, bits 31..0 the other endpoint's type
// ID. Distinct (direction, label, type) triples always pack to distinct
// keys — unlike the string form "out:<label>:<type>", which could collide
// on labels containing the delimiter.
func edgeKey(st *symtab, in bool, label, otherType string) uint64 {
	k := uint64(st.intern(label))<<32 | uint64(st.intern(otherType))
	if in {
		k |= edgeIn
	}
	return k
}

// columnSemantics is the annotation of one column of one table. edges is
// the column's incident relationship set as sorted, deduplicated packed
// keys.
type columnSemantics struct {
	col   int
	ann   kb.ColumnAnnotation
	edges []uint64
}

// tableSemantics is the semantic graph of one table.
type tableSemantics struct {
	t    *table.Table
	cols []columnSemantics
}

// Index is an immutable SANTOS index over a data lake: every table's
// semantic graph, precomputed offline as the demo's preprocessing step.
type Index struct {
	knowledge *kb.KB
	syms      *symtab
	tables    []tableSemantics
}

// Build annotates every lake table against the knowledge base. Tables
// without any annotated column are indexed but can never match.
// Annotation is per-table pure work over a read-only KB, so tables are
// annotated in parallel; slot-indexed results keep the index order — and
// therefore query results — identical to a sequential build. (Symbol IDs
// are scheduling-dependent; edge comparison depends only on ID equality,
// never ID order.)
func Build(lakeTables []*table.Table, knowledge *kb.KB) *Index {
	ix := &Index{knowledge: knowledge, syms: newSymtab(), tables: make([]tableSemantics, len(lakeTables))}
	par.For(len(lakeTables), func(i int) {
		ix.tables[i] = annotate(lakeTables[i], knowledge, ix.syms)
	})
	return ix
}

// NumTables reports how many tables are indexed.
func (ix *Index) NumTables() int { return len(ix.tables) }

// annotate computes the semantic graph of a table.
func annotate(t *table.Table, knowledge *kb.KB, syms *symtab) tableSemantics {
	ts := tableSemantics{t: t}
	anns := make([]kb.ColumnAnnotation, t.NumCols())
	textual := make([]bool, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		if !kb.MostlyTextual(t, c) {
			continue
		}
		textual[c] = true
		anns[c] = knowledge.AnnotateColumn(t.DistinctStrings(c))
	}
	edgesByCol := make(map[int][]uint64)
	for a := 0; a < t.NumCols(); a++ {
		if !textual[a] || anns[a].Type == "" {
			continue
		}
		for b := a + 1; b < t.NumCols(); b++ {
			if !textual[b] || anns[b].Type == "" {
				continue
			}
			pairs := rowPairs(t, a, b)
			pa := knowledge.AnnotateColumnPair(pairs)
			if pa.Label == "" {
				continue
			}
			// Normalize direction: with Inverse=false the relation runs
			// a -> b; with Inverse=true it runs b -> a.
			from, to := a, b
			if pa.Inverse {
				from, to = b, a
			}
			edgesByCol[from] = append(edgesByCol[from], edgeKey(syms, false, pa.Label, anns[to].Type))
			edgesByCol[to] = append(edgesByCol[to], edgeKey(syms, true, pa.Label, anns[from].Type))
		}
	}
	for c := 0; c < t.NumCols(); c++ {
		if anns[c].Type == "" {
			continue
		}
		ts.cols = append(ts.cols, columnSemantics{col: c, ann: anns[c], edges: sortedUnique(edgesByCol[c])})
	}
	return ts
}

// sortedUnique sorts keys ascending and removes duplicates in place,
// turning an edge list into the canonical set form edgeJaccard merges.
func sortedUnique(keys []uint64) []uint64 {
	if len(keys) < 2 {
		return keys
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// rowPairs extracts row-aligned (a,b) string pairs where both cells are
// non-null.
func rowPairs(t *table.Table, a, b int) [][2]string {
	var out [][2]string
	for _, row := range t.Rows {
		if row[a].IsNull() || row[b].IsNull() {
			continue
		}
		out = append(out, [2]string{row[a].String(), row[b].String()})
	}
	return out
}

// supertypeDecay is the type-match score multiplier per hierarchy hop when
// the query and candidate column types differ but one subsumes the other.
const supertypeDecay = 0.5

// typeMatchScore scores how well candidate type ct matches query type qt.
func typeMatchScore(knowledge *kb.KB, qt, ct string) float64 {
	if qt == ct {
		return 1
	}
	w := 1.0
	for _, anc := range knowledge.Ancestors(ct) {
		w *= supertypeDecay
		if anc == qt {
			return w
		}
	}
	w = 1.0
	for _, anc := range knowledge.Ancestors(qt) {
		w *= supertypeDecay
		if anc == ct {
			return w
		}
	}
	return 0
}

// edgeJaccard computes the Jaccard similarity of two edge-key sets, both
// already in canonical sorted-unique form, with an allocation-free linear
// merge.
func edgeJaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Result is one ranked unionable table.
type Result struct {
	Table *table.Table
	Score float64
	// MatchedColumn is the candidate column matched to the intent column.
	MatchedColumn int
}

// Query ranks lake tables by semantic unionability with the query table,
// anchored at intentCol (the demo's "intent column"). The score of a
// candidate column c against the query's intent column q is
//
//	conf(q)·conf(c)·typeMatch(q,c) · (1 + relationshipJaccard(q,c))
//
// and a table scores the maximum over its columns. Tables scoring zero
// (no type-compatible column) are omitted. k<=0 returns all matches.
func (ix *Index) Query(q *table.Table, intentCol int, k int) ([]Result, error) {
	if intentCol < 0 || intentCol >= q.NumCols() {
		return nil, fmt.Errorf("santos: intent column %d out of range for table %q with %d columns", intentCol, q.Name, q.NumCols())
	}
	qs := annotate(q, ix.knowledge, ix.syms)
	var qcs *columnSemantics
	for i := range qs.cols {
		if qs.cols[i].col == intentCol {
			qcs = &qs.cols[i]
		}
	}
	if qcs == nil {
		return nil, fmt.Errorf("santos: intent column %d of table %q has no semantic annotation (textual KB-covered column required)", intentCol, q.Name)
	}
	var results []Result
	for i := range ix.tables {
		cand := &ix.tables[i]
		if cand.t.Name == q.Name {
			continue // never return the query itself
		}
		best := 0.0
		bestCol := -1
		for j := range cand.cols {
			cc := &cand.cols[j]
			tm := typeMatchScore(ix.knowledge, qcs.ann.Type, cc.ann.Type)
			if tm == 0 {
				continue
			}
			score := qcs.ann.Confidence * cc.ann.Confidence * tm * (1 + edgeJaccard(qcs.edges, cc.edges))
			if score > best {
				best = score
				bestCol = cc.col
			}
		}
		if best > 0 {
			results = append(results, Result{Table: cand.t, Score: best, MatchedColumn: bestCol})
		}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Table.Name < results[b].Table.Name
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}
