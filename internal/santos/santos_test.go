package santos

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func demoIndex() *Index {
	return Build(paperdata.CovidLake(), kb.Demo())
}

func TestFig2UnionableSearch(t *testing.T) {
	// The paper's Example 1: query T1 with intent column City; SANTOS must
	// rank T2 (same schema, same city->country relationship) above T3
	// (joinable table with the same city type but no relationships).
	ix := demoIndex()
	q := paperdata.T1()
	city, _ := q.ColumnIndex(paperdata.ColCity)
	got, err := ix.Query(q, city, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(got), got)
	}
	if got[0].Table.Name != "T2" {
		t.Errorf("top unionable = %s, want T2", got[0].Table.Name)
	}
	if got[1].Table.Name != "T3" {
		t.Errorf("second = %s, want T3", got[1].Table.Name)
	}
	if got[0].Score <= got[1].Score {
		t.Errorf("T2 score %v must exceed T3 score %v (relationship match)", got[0].Score, got[1].Score)
	}
	if got[0].MatchedColumn != 1 {
		t.Errorf("T2 matched column = %d, want 1 (City)", got[0].MatchedColumn)
	}
}

func TestTopKLimit(t *testing.T) {
	ix := demoIndex()
	q := paperdata.T1()
	got, err := ix.Query(q, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Table.Name != "T2" {
		t.Errorf("top-1 = %+v", got)
	}
}

func TestIntentColumnValidation(t *testing.T) {
	ix := demoIndex()
	q := paperdata.T1()
	if _, err := ix.Query(q, 99, 10); err == nil {
		t.Error("out-of-range intent column must error")
	}
	// Numeric intent column has no semantic annotation.
	numeric := table.New("N", "id", "x")
	numeric.MustAddRow(table.IntValue(1), table.IntValue(2))
	if _, err := ix.Query(numeric, 0, 10); err == nil {
		t.Error("unannotatable intent column must error")
	}
}

func TestQueryTableNeverReturned(t *testing.T) {
	lake := append(paperdata.CovidLake(), paperdata.T1())
	ix := Build(lake, kb.Demo())
	got, err := ix.Query(paperdata.T1(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Table.Name == "T1" {
			t.Error("query table returned as its own result")
		}
	}
}

func TestOffTopicQueryFindsNothing(t *testing.T) {
	ix := demoIndex()
	q := table.New("Q", "product", "price")
	q.MustAddRow(table.StringValue("widget"), table.IntValue(5))
	q.MustAddRow(table.StringValue("gadget"), table.IntValue(7))
	// "product" values are not in the demo KB, so the intent column cannot
	// be annotated — the paper notes off-topic queries may yield no results.
	if _, err := ix.Query(q, 0, 10); err == nil {
		t.Error("off-topic query should error on unannotatable intent column")
	}
}

func TestSupertypeMatching(t *testing.T) {
	k := kb.Demo()
	// A query column of countries should still weakly match a city column
	// through the "place" supertype.
	if s := typeMatchScore(k, kb.TypeCountry, kb.TypeCity); s != 0 {
		t.Errorf("country vs city = %v, want 0 (siblings, no subsumption)", s)
	}
	if s := typeMatchScore(k, kb.TypePlace, kb.TypeCity); s != supertypeDecay {
		t.Errorf("place vs city = %v, want %v", s, supertypeDecay)
	}
	if s := typeMatchScore(k, kb.TypeCity, kb.TypePlace); s != supertypeDecay {
		t.Errorf("city vs place = %v, want %v (symmetric)", s, supertypeDecay)
	}
	if s := typeMatchScore(k, kb.TypeCity, kb.TypeCity); s != 1 {
		t.Errorf("exact match = %v, want 1", s)
	}
}

func TestEdgeJaccard(t *testing.T) {
	a := sortedUnique([]uint64{
		edgeKeyID(false, 0, 1),
		edgeKeyID(true, 1, 1),
	})
	b := sortedUnique([]uint64{edgeKeyID(false, 0, 1)})
	if got := edgeJaccard(a, b); got != 0.5 {
		t.Errorf("edgeJaccard = %v, want 0.5", got)
	}
	if edgeJaccard(nil, nil) != 0 {
		t.Error("empty edge sets must score 0")
	}
	if edgeJaccard(a, a) != 1 {
		t.Error("identical edge sets must score 1")
	}
}

func TestEdgeKeyPacking(t *testing.T) {
	out := edgeKeyID(false, 3, 7)
	in := edgeKeyID(true, 3, 7)
	if out == in {
		t.Error("direction must distinguish edge keys")
	}
	if edgeKeyID(false, 3, 7) != out {
		t.Error("edge keys must be stable across calls")
	}
	if edgeKeyID(false, 3, 8) == out {
		t.Error("other-endpoint type must distinguish edge keys")
	}
	if edgeKeyID(false, 4, 7) == out {
		t.Error("label must distinguish edge keys")
	}
	// Distinct (label, type) ID pairs can never collide in the packed form,
	// unlike the old delimiter-joined string keys.
	if edgeKeyID(false, 1, 2) == edgeKeyID(false, 2, 1) {
		t.Error("packed keys must not collide across the label/type split")
	}
	// sortedUnique canonicalizes: duplicates collapse, order ascending.
	ks := sortedUnique([]uint64{out, in, out})
	if len(ks) != 2 || ks[0] > ks[1] {
		t.Errorf("sortedUnique = %v", ks)
	}
}

func TestSynthesizedKBFallback(t *testing.T) {
	// A domain with no curated coverage still works via the synthesized KB.
	mk := func(name string, people, teams []string) *table.Table {
		tb := table.New(name, "who", "team")
		for i := range people {
			tb.MustAddRow(table.StringValue(people[i]), table.StringValue(teams[i]))
		}
		return tb
	}
	lake := []*table.Table{
		mk("roster1", []string{"alice", "bob", "carol", "dan"}, []string{"red", "blue", "red", "blue"}),
		mk("roster2", []string{"alice", "bob", "erin", "frank"}, []string{"red", "green", "green", "red"}),
		mk("products", []string{"widget", "gadget", "sprocket", "gear"}, []string{"x1", "x2", "x3", "x4"}),
	}
	syn := kb.Synthesize(lake, kb.SynthesizeOptions{})
	ix := Build(lake, syn)
	q := mk("q", []string{"alice", "carol", "frank"}, []string{"red", "red", "red"})
	got, err := ix.Query(q, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("expected both rosters, got %+v", got)
	}
	names := map[string]bool{}
	for _, r := range got {
		names[r.Table.Name] = true
	}
	if !names["roster1"] || !names["roster2"] {
		t.Errorf("rosters missing from results: %v", names)
	}
	if names["products"] {
		t.Error("unrelated products table must not match")
	}
}

func TestNumTables(t *testing.T) {
	if demoIndex().NumTables() != 2 {
		t.Error("NumTables broken")
	}
}
