package santos

import (
	"fmt"

	"repro/internal/kb"
	"repro/internal/table"
)

// This file is the persistence surface of the SANTOS index. Annotation —
// resolving every cell to a canonical entity and voting column types and
// pair relationships — is the expensive part of a build; the result is a
// small per-table semantic graph over compiled KB IDs. Export flattens
// those graphs, Restore rebuilds an Index from them without re-annotating
// anything.
//
// The packed edge keys and type IDs embedded in the graphs are only
// meaningful relative to one compiled KB. kb.Compile assigns dense IDs in
// sorted content order, so recompiling a KB restored from the same dump
// (kb.FromDump) reproduces every ID — the caller's contract is exactly
// that: Restore's annotator must be compiled from KB content equal to the
// exporting index's build-time snapshot.

// ColumnState is the serializable annotation of one table column.
type ColumnState struct {
	Col        int
	Type       string   // winning semantic type ("" never occurs: unannotated columns are omitted)
	Confidence float64  // ColumnAnnotation.Confidence, bit-exact
	TypeID     uint32   // compiled ID of Type
	Edges      []uint64 // sorted unique packed edge keys (see edgeKeyID)
}

// TableState is the serializable semantic graph of one table. Tables whose
// columns carry no semantics still export a TableState (with empty Cols):
// the index tracks every lake table, matchable or not.
type TableState struct {
	Table string
	Cols  []ColumnState
}

// Export flattens the semantic graphs of all indexed tables, in index
// order. The result shares no mutable state with the index.
func (ix *Index) Export() []TableState {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]TableState, len(ix.tables))
	for i := range ix.tables {
		ts := &ix.tables[i]
		st := TableState{Table: ts.t.Name}
		for _, cs := range ts.cols {
			st.Cols = append(st.Cols, ColumnState{
				Col:        cs.col,
				Type:       cs.ann.Type,
				Confidence: cs.ann.Confidence,
				TypeID:     cs.typeID,
				Edges:      append([]uint64(nil), cs.edges...),
			})
		}
		out[i] = st
	}
	return out
}

// Restore rebuilds an Index over lakeTables from exported semantic graphs,
// skipping annotation entirely. states must cover exactly the named tables
// (order-independent: they are matched by name and the index takes
// lakeTables order, so a restored index ranks ties identically to the
// exporting one). ann must be compiled from the same KB content the
// exporting index was built against; it serves queries and future Adds.
func Restore(lakeTables []*table.Table, ann *kb.Annotator, states []TableState) (*Index, error) {
	if len(states) != len(lakeTables) {
		return nil, fmt.Errorf("santos: restore: %d semantic graphs for %d tables", len(states), len(lakeTables))
	}
	byName := make(map[string]*TableState, len(states))
	for i := range states {
		st := &states[i]
		if _, dup := byName[st.Table]; dup {
			return nil, fmt.Errorf("santos: restore: duplicate semantic graph for table %q", st.Table)
		}
		byName[st.Table] = st
	}
	ix := &Index{ann: ann, tables: make([]tableSemantics, len(lakeTables))}
	ix.scratch.New = func() any { return ann.Compiled().NewScratch() }
	for i, t := range lakeTables {
		st, ok := byName[t.Name]
		if !ok {
			return nil, fmt.Errorf("santos: restore: no semantic graph for table %q", t.Name)
		}
		ts := tableSemantics{t: t}
		for _, cs := range st.Cols {
			if cs.Col < 0 || cs.Col >= t.NumCols() {
				return nil, fmt.Errorf("santos: restore: table %q: column %d out of range", t.Name, cs.Col)
			}
			ts.cols = append(ts.cols, columnSemantics{
				col:    cs.Col,
				ann:    kb.ColumnAnnotation{Type: cs.Type, Confidence: cs.Confidence},
				typeID: cs.TypeID,
				edges:  append([]uint64(nil), cs.Edges...),
			})
		}
		ix.tables[i] = ts
	}
	return ix, nil
}
