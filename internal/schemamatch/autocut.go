package schemamatch

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/table"
)

// AutoHolistic is the holistic matcher with automatic cut selection: the
// constrained agglomerative merge sequence is scored by average silhouette
// at every step, and the best-scoring clustering wins. It removes the one
// knob (MinSimilarity) the fixed-threshold matcher exposes, at the cost of
// an extra O(n²) scoring pass per merge — the trade the ALITE paper makes
// when selecting the number of integration IDs data-driven.
type AutoHolistic struct {
	// Knowledge supplies semantic-type features (may be nil).
	Knowledge *kb.KB
	// HeaderWeight blends header embeddings (default 0.25; negative
	// disables).
	HeaderWeight float64
}

// Align implements Matcher.
func (h AutoHolistic) Align(tables []*table.Table) (Alignment, error) {
	if len(tables) == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: empty integration set")
	}
	base := Holistic{Knowledge: h.Knowledge, HeaderWeight: h.HeaderWeight}
	hw := base.headerWeight()
	var refs []ColumnRef
	var vecs [][]float64
	for ti, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			refs = append(refs, ColumnRef{ti, c})
			content := embed.Column(t.Column(c), h.Knowledge)
			if hw > 0 {
				content = embed.Combine(content, embed.Header(t.Columns[c]), hw)
			}
			vecs = append(vecs, content)
		}
	}
	n := len(refs)
	if n == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: integration set has no columns")
	}
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i == j {
				sim[i][j] = 1
			} else {
				sim[i][j] = embed.Cosine(vecs[i], vecs[j])
			}
		}
	}
	labels := clusterAutoCut(refs, sim)
	return buildAlignment(tables, refs, labels), nil
}

// snapshotFloor is the merge-sequence floor for auto-cut: merges below
// this similarity are never candidates, which bounds the sequence without
// influencing cut selection in practice.
const snapshotFloor = 0.05

// clusterAutoCut builds the constrained merge sequence down to
// snapshotFloor, scores every intermediate clustering by average
// silhouette (distance = 1 - cosine), and returns the best. Ties prefer
// fewer clusters (the later snapshot).
func clusterAutoCut(refs []ColumnRef, sim [][]float64) []int {
	n := len(refs)
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	snapshot := func() []int {
		out := make([]int, n)
		for id, ms := range members {
			for _, x := range ms {
				out[x] = id
			}
		}
		return out
	}
	best := snapshot()
	bestScore := avgSilhouette(best, sim)
	linkSim := func(a, b int) float64 {
		m := 1.0
		for _, x := range members[a] {
			for _, y := range members[b] {
				if s := sim[x][y]; s < m {
					m = s
				}
			}
		}
		return m
	}
	conflict := func(a, b int) bool {
		seen := make(map[int]bool)
		for _, x := range members[a] {
			seen[refs[x].Table] = true
		}
		for _, y := range members[b] {
			if seen[refs[y].Table] {
				return true
			}
		}
		return false
	}
	for {
		bestA, bestB, bestS := -1, -1, snapshotFloor
		ids := make([]int, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sortInts(ids)
		for ai := 0; ai < len(ids); ai++ {
			for bi := ai + 1; bi < len(ids); bi++ {
				a, b := ids[ai], ids[bi]
				if conflict(a, b) {
					continue
				}
				if s := linkSim(a, b); s > bestS || (s == bestS && bestA == -1) {
					if s >= snapshotFloor {
						bestA, bestB, bestS = a, b, s
					}
				}
			}
		}
		if bestA < 0 {
			break
		}
		members[bestA] = append(members[bestA], members[bestB]...)
		sortInts(members[bestA])
		delete(members, bestB)
		labels := snapshot()
		if score := avgSilhouette(labels, sim); score >= bestScore {
			bestScore = score
			best = labels
		}
	}
	return best
}

// avgSilhouette computes the mean silhouette coefficient of a clustering
// under distance 1 - sim. Singleton points contribute 0 (the standard
// convention); a clustering that is all singletons scores 0.
func avgSilhouette(labels []int, sim [][]float64) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	clusters := make(map[int][]int)
	for i, l := range labels {
		clusters[l] = append(clusters[l], i)
	}
	if len(clusters) <= 1 {
		return 0
	}
	dist := func(a, b int) float64 { return 1 - sim[a][b] }
	total := 0.0
	for i := 0; i < n; i++ {
		own := clusters[labels[i]]
		if len(own) == 1 {
			continue // silhouette of a singleton is 0
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += dist(i, j)
			}
		}
		a /= float64(len(own) - 1)
		b := -1.0
		for l, ms := range clusters {
			if l == labels[i] {
				continue
			}
			var d float64
			for _, j := range ms {
				d += dist(i, j)
			}
			d /= float64(len(ms))
			if b < 0 || d < b {
				b = d
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
