package schemamatch

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func TestAutoHolisticAlignsFig2Tables(t *testing.T) {
	tables := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	got, err := AutoHolistic{Knowledge: kb.Demo()}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fig2Truth().Align(tables)
	_, _, f1 := PairwiseScores(got, truth)
	if f1 != 1 {
		t.Errorf("auto-cut alignment f1 = %v, schema %v", f1, got.Schema)
	}
	if len(got.Schema) != 5 {
		t.Errorf("auto-cut schema = %v, want 5 IDs", got.Schema)
	}
}

func TestAutoHolisticVaccineTables(t *testing.T) {
	got, err := AutoHolistic{Knowledge: kb.Demo()}.Align(paperdata.VaccineSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 3 {
		t.Errorf("auto-cut vaccine schema = %v, want 3 IDs", got.Schema)
	}
}

func TestAutoHolisticRespectsCannotLink(t *testing.T) {
	tb := table.New("twin", "a", "b")
	tb.MustAddRow(table.StringValue("x"), table.StringValue("x"))
	got, err := AutoHolistic{}.Align([]*table.Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := got.PositionOf(0, 0)
	pb, _ := got.PositionOf(0, 1)
	if pa == pb {
		t.Error("cannot-link violated by auto-cut")
	}
}

func TestAutoHolisticValidation(t *testing.T) {
	if _, err := (AutoHolistic{}).Align(nil); err == nil {
		t.Error("empty set must error")
	}
	if _, err := (AutoHolistic{}).Align([]*table.Table{table.New("e")}); err == nil {
		t.Error("zero-column set must error")
	}
}

func TestAvgSilhouette(t *testing.T) {
	// Two tight clusters, far apart: silhouette near 1.
	sim := [][]float64{
		{1.0, 0.9, 0.1, 0.1},
		{0.9, 1.0, 0.1, 0.1},
		{0.1, 0.1, 1.0, 0.9},
		{0.1, 0.1, 0.9, 1.0},
	}
	good := avgSilhouette([]int{0, 0, 1, 1}, sim)
	if good < 0.8 {
		t.Errorf("good clustering silhouette = %v", good)
	}
	// The crossed clustering scores worse.
	bad := avgSilhouette([]int{0, 1, 0, 1}, sim)
	if bad >= good {
		t.Errorf("bad clustering %v should score below good %v", bad, good)
	}
	// Degenerate cases.
	if avgSilhouette([]int{0, 0, 0, 0}, sim) != 0 {
		t.Error("single cluster scores 0")
	}
	if avgSilhouette(nil, nil) != 0 {
		t.Error("empty clustering scores 0")
	}
	if avgSilhouette([]int{0, 1, 2, 3}, sim) != 0 {
		t.Error("all singletons score 0")
	}
}

func TestAutoHolisticHeaderlessStillAligns(t *testing.T) {
	tables := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	for _, tb := range tables {
		for c := range tb.Columns {
			tb.Columns[c] = ""
		}
	}
	got, err := AutoHolistic{Knowledge: kb.Demo(), HeaderWeight: -1}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fig2Truth().Align(tables)
	_, _, f1 := PairwiseScores(got, truth)
	if f1 < 0.99 {
		t.Errorf("headerless auto-cut f1 = %v", f1)
	}
}
