// Package schemamatch implements ALITE's holistic schema matching: given an
// integration set of tables with unreliable headers, it assigns every
// column an integration ID such that columns holding the same real-world
// attribute share an ID. The ALITE paper clusters column embeddings under
// the constraint that two columns of one table never co-cluster; this
// package does the same with complete-linkage agglomerative clustering
// over the embeddings of package embed, plus two baselines (header
// equality, and an oracle for tests/experiments).
package schemamatch

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/embed"
	"repro/internal/kb"
	"repro/internal/table"
	"repro/internal/tokenize"
)

// ColumnRef identifies a column within an integration set: table index
// (into the slice given to Align) and column index.
type ColumnRef struct {
	Table int
	Col   int
}

// Alignment maps every column of an integration set onto an integration
// schema. Positions index Schema.
type Alignment struct {
	// Schema holds the integration IDs in canonical order (clusters ordered
	// by first occurrence).
	Schema []string
	// Pos maps each column to its schema position.
	Pos map[ColumnRef]int
}

// PositionOf returns the schema position of a column.
func (a Alignment) PositionOf(tableIdx, col int) (int, bool) {
	p, ok := a.Pos[ColumnRef{tableIdx, col}]
	return p, ok
}

// Matcher aligns an integration set onto one integration schema.
type Matcher interface {
	Align(tables []*table.Table) (Alignment, error)
}

// Holistic is the ALITE-style matcher: constrained complete-linkage
// clustering over column embeddings.
type Holistic struct {
	// Knowledge supplies semantic-type features to the embeddings; nil
	// disables them (ablation X5 measures the difference).
	Knowledge *kb.KB
	// HeaderWeight blends header embeddings into content embeddings.
	// Headers in data lakes are unreliable, so the default is a light 0.25.
	// Negative disables headers entirely.
	HeaderWeight float64
	// MinSimilarity is the complete-linkage floor: two clusters merge only
	// while every cross pair has cosine at least this. Default 0.42 —
	// above the ~0.36 cosine two numeric columns of different magnitudes
	// share through their common kind feature alone, so unrelated measure
	// columns do not collapse.
	MinSimilarity float64
}

func (h Holistic) headerWeight() float64 {
	if h.HeaderWeight < 0 {
		return 0
	}
	if h.HeaderWeight == 0 {
		return 0.25
	}
	return h.HeaderWeight
}

func (h Holistic) minSimilarity() float64 {
	if h.MinSimilarity <= 0 {
		return 0.42
	}
	return h.MinSimilarity
}

// Align implements Matcher.
func (h Holistic) Align(tables []*table.Table) (Alignment, error) {
	if len(tables) == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: empty integration set")
	}
	var refs []ColumnRef
	var vecs [][]float64
	hw := h.headerWeight()
	for ti, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			refs = append(refs, ColumnRef{ti, c})
			content := embed.Column(t.Column(c), h.Knowledge)
			if hw > 0 {
				content = embed.Combine(content, embed.Header(t.Columns[c]), hw)
			}
			vecs = append(vecs, content)
		}
	}
	n := len(refs)
	if n == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: integration set has no columns")
	}
	// Pairwise similarities.
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i == j {
				sim[i][j] = 1
				continue
			}
			sim[i][j] = embed.Cosine(vecs[i], vecs[j])
		}
	}
	labels := clusterConstrained(refs, sim, h.minSimilarity())
	return buildAlignment(tables, refs, labels), nil
}

// clusterConstrained performs complete-linkage agglomerative clustering
// with same-table cannot-link constraints. It returns a cluster label per
// ref.
func clusterConstrained(refs []ColumnRef, sim [][]float64, minSim float64) []int {
	n := len(refs)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	// linkSim computes complete-linkage similarity between two clusters:
	// the MINIMUM pairwise similarity (every member pair must be similar).
	linkSim := func(a, b int) float64 {
		m := 1.0
		for _, x := range members[a] {
			for _, y := range members[b] {
				if s := sim[x][y]; s < m {
					m = s
				}
			}
		}
		return m
	}
	conflict := func(a, b int) bool {
		tablesSeen := make(map[int]bool)
		for _, x := range members[a] {
			tablesSeen[refs[x].Table] = true
		}
		for _, y := range members[b] {
			if tablesSeen[refs[y].Table] {
				return true
			}
		}
		return false
	}
	for {
		bestA, bestB, bestS := -1, -1, minSim
		ids := make([]int, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for ai := 0; ai < len(ids); ai++ {
			for bi := ai + 1; bi < len(ids); bi++ {
				a, b := ids[ai], ids[bi]
				if conflict(a, b) {
					continue
				}
				if s := linkSim(a, b); s > bestS || (s == bestS && bestA == -1) {
					if s >= minSim {
						bestA, bestB, bestS = a, b, s
					}
				}
			}
		}
		if bestA < 0 {
			break
		}
		members[bestA] = append(members[bestA], members[bestB]...)
		sort.Ints(members[bestA])
		delete(members, bestB)
	}
	// Relabel compactly.
	for id, ms := range members {
		for _, x := range ms {
			labels[x] = id
		}
	}
	return labels
}

// buildAlignment turns cluster labels into an Alignment with
// deterministically ordered, uniquely named integration IDs.
func buildAlignment(tables []*table.Table, refs []ColumnRef, labels []int) Alignment {
	clusters := make(map[int][]int)
	for i, l := range labels {
		clusters[l] = append(clusters[l], i)
	}
	type clusterInfo struct {
		label   int
		first   ColumnRef
		members []int
	}
	var infos []clusterInfo
	for l, ms := range clusters {
		sort.Slice(ms, func(a, b int) bool {
			ra, rb := refs[ms[a]], refs[ms[b]]
			if ra.Table != rb.Table {
				return ra.Table < rb.Table
			}
			return ra.Col < rb.Col
		})
		infos = append(infos, clusterInfo{label: l, first: refs[ms[0]], members: ms})
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].first.Table != infos[b].first.Table {
			return infos[a].first.Table < infos[b].first.Table
		}
		return infos[a].first.Col < infos[b].first.Col
	})
	align := Alignment{Pos: make(map[ColumnRef]int)}
	used := make(map[string]int)
	for pos, info := range infos {
		name := clusterName(tables, refs, info.members, pos)
		if c := used[name]; c > 0 {
			name = name + "_" + strconv.Itoa(c+1)
		}
		used[name]++
		align.Schema = append(align.Schema, name)
		for _, m := range info.members {
			align.Pos[refs[m]] = pos
		}
	}
	return align
}

// clusterName picks the most frequent non-empty header among cluster
// members (original spelling of its first bearer), falling back to
// "col<pos>". Headers are compared in normalized form.
func clusterName(tables []*table.Table, refs []ColumnRef, members []int, pos int) string {
	counts := make(map[string]int)
	firstSpelling := make(map[string]string)
	for _, m := range members {
		r := refs[m]
		raw := tables[r.Table].Columns[r.Col]
		norm := tokenize.Normalize(raw)
		if norm == "" {
			continue
		}
		counts[norm]++
		if _, ok := firstSpelling[norm]; !ok {
			firstSpelling[norm] = raw
		}
	}
	best, bestCount := "", 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestCount {
			best, bestCount = k, counts[k]
		}
	}
	if best == "" {
		return "col" + strconv.Itoa(pos)
	}
	return firstSpelling[best]
}

// HeaderMatcher is the baseline that trusts headers: columns with equal
// normalized headers share an integration ID. Columns with empty headers
// each form their own cluster. It fails exactly where the paper says data
// lakes fail — inconsistent or missing headers.
type HeaderMatcher struct{}

// Align implements Matcher.
func (HeaderMatcher) Align(tables []*table.Table) (Alignment, error) {
	if len(tables) == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: empty integration set")
	}
	var refs []ColumnRef
	var labels []int
	byHeader := make(map[string]int)
	next := 0
	for ti, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			refs = append(refs, ColumnRef{ti, c})
			norm := tokenize.Normalize(t.Columns[c])
			if norm == "" {
				labels = append(labels, next)
				next++
				continue
			}
			if l, ok := byHeader[norm]; ok {
				labels = append(labels, l)
			} else {
				byHeader[norm] = next
				labels = append(labels, next)
				next++
			}
		}
	}
	return buildAlignment(tables, refs, labels), nil
}

// Oracle clusters columns by a caller-provided truth label; it is the
// perfect matcher used to isolate integration behaviour from matching
// behaviour in tests and experiments.
type Oracle struct {
	// Label returns the ground-truth attribute label of a column; columns
	// with equal labels co-cluster. Empty labels form singletons.
	Label func(tableName string, col int) string
}

// Align implements Matcher.
func (o Oracle) Align(tables []*table.Table) (Alignment, error) {
	if o.Label == nil {
		return Alignment{}, fmt.Errorf("schemamatch: oracle needs a Label function")
	}
	if len(tables) == 0 {
		return Alignment{}, fmt.Errorf("schemamatch: empty integration set")
	}
	var refs []ColumnRef
	var labels []int
	byLabel := make(map[string]int)
	next := 0
	for ti, t := range tables {
		for c := 0; c < t.NumCols(); c++ {
			refs = append(refs, ColumnRef{ti, c})
			l := o.Label(t.Name, c)
			if l == "" {
				labels = append(labels, next)
				next++
				continue
			}
			if id, ok := byLabel[l]; ok {
				labels = append(labels, id)
			} else {
				byLabel[l] = next
				labels = append(labels, next)
				next++
			}
		}
	}
	return buildAlignment(tables, refs, labels), nil
}

// PairwiseScores compares a predicted alignment against a truth alignment
// by column-pair co-clustering decisions, returning precision, recall and
// F1. Only columns present in both alignments are considered.
func PairwiseScores(pred, truth Alignment) (precision, recall, f1 float64) {
	var refs []ColumnRef
	for r := range truth.Pos {
		if _, ok := pred.Pos[r]; ok {
			refs = append(refs, r)
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].Table != refs[b].Table {
			return refs[a].Table < refs[b].Table
		}
		return refs[a].Col < refs[b].Col
	})
	var tp, fp, fn float64
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			p := pred.Pos[refs[i]] == pred.Pos[refs[j]]
			tr := truth.Pos[refs[i]] == truth.Pos[refs[j]]
			switch {
			case p && tr:
				tp++
			case p && !tr:
				fp++
			case !p && tr:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}
