package schemamatch

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/paperdata"
	"repro/internal/table"
)

// fig2Truth is the ground-truth alignment of the paper's T1,T2,T3: columns
// with the same real-world attribute share a label.
func fig2Truth() Oracle {
	return Oracle{Label: func(name string, col int) string {
		switch name {
		case "T1", "T2":
			return []string{"country", "city", "rate"}[col]
		case "T3":
			return []string{"city", "cases", "death"}[col]
		}
		return ""
	}}
}

func TestHolisticAlignsFig2Tables(t *testing.T) {
	tables := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	got, err := Holistic{Knowledge: kb.Demo()}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 5 {
		t.Fatalf("schema = %v, want 5 integration IDs", got.Schema)
	}
	truth, err := fig2Truth().Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := PairwiseScores(got, truth)
	if f1 != 1 {
		t.Errorf("holistic alignment p=%v r=%v f1=%v, want perfect on the demo tables\nschema: %v\npos: %v", p, r, f1, got.Schema, got.Pos)
	}
	// Schema order follows first occurrence: T1's columns first, then T3's
	// two new columns — exactly Fig. 3's column order.
	want := []string{paperdata.ColCountry, paperdata.ColCity, paperdata.ColVaccRate, paperdata.ColCases, paperdata.ColDeathRate}
	for i, s := range got.Schema {
		if s != want[i] {
			t.Errorf("schema[%d] = %q, want %q", i, s, want[i])
		}
	}
}

func TestHolisticWithoutHeaders(t *testing.T) {
	// Strip all headers: the matcher must still align the demo tables from
	// content+KB alone (the data-lake condition the paper stresses).
	tables := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	for _, tb := range tables {
		for c := range tb.Columns {
			tb.Columns[c] = ""
		}
	}
	got, err := Holistic{Knowledge: kb.Demo(), HeaderWeight: -1}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := fig2Truth().Align(tables)
	_, _, f1 := PairwiseScores(got, truth)
	if f1 < 0.99 {
		t.Errorf("headerless alignment f1 = %v, want 1; schema %v", f1, got.Schema)
	}
	// Fallback names are generated for unnamed clusters.
	for _, s := range got.Schema {
		if s == "" {
			t.Error("integration IDs must never be empty")
		}
	}
}

func TestCannotLinkConstraint(t *testing.T) {
	// Two identical columns within one table must not co-cluster even
	// though their embeddings are identical.
	tb := table.New("twin", "a", "b")
	tb.MustAddRow(table.StringValue("x"), table.StringValue("x"))
	tb.MustAddRow(table.StringValue("y"), table.StringValue("y"))
	got, err := Holistic{}.Align([]*table.Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := got.PositionOf(0, 0)
	pb, _ := got.PositionOf(0, 1)
	if pa == pb {
		t.Error("same-table columns co-clustered despite cannot-link")
	}
}

func TestHeaderMatcher(t *testing.T) {
	tables := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	got, err := HeaderMatcher{}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 5 {
		t.Fatalf("header matcher schema = %v", got.Schema)
	}
	truth, _ := fig2Truth().Align(tables)
	if _, _, f1 := PairwiseScores(got, truth); f1 != 1 {
		t.Errorf("header matcher must be perfect when headers are reliable, f1=%v", f1)
	}
	// Corrupt one header: the baseline breaks (this is experiment X5's
	// point), while content-based matching survives.
	tables2 := []*table.Table{paperdata.T1(), paperdata.T2(), paperdata.T3()}
	tables2[1].Columns[1] = "municipality"
	hdr, _ := HeaderMatcher{}.Align(tables2)
	_, _, f1hdr := PairwiseScores(hdr, truth)
	hol, _ := Holistic{Knowledge: kb.Demo()}.Align(tables2)
	_, _, f1hol := PairwiseScores(hol, truth)
	if f1hdr >= 1 {
		t.Error("corrupted header should hurt the header baseline")
	}
	if f1hol <= f1hdr {
		t.Errorf("holistic (%v) must beat header baseline (%v) under corruption", f1hol, f1hdr)
	}
}

func TestOracleValidation(t *testing.T) {
	if _, err := (Oracle{}).Align([]*table.Table{paperdata.T1()}); err == nil {
		t.Error("oracle without Label must error")
	}
	if _, err := (Oracle{Label: func(string, int) string { return "" }}).Align(nil); err == nil {
		t.Error("empty set must error")
	}
	if _, err := (Holistic{}).Align(nil); err == nil {
		t.Error("empty set must error")
	}
	if _, err := (HeaderMatcher{}).Align(nil); err == nil {
		t.Error("empty set must error")
	}
	empty := table.New("e")
	if _, err := (Holistic{}).Align([]*table.Table{empty}); err == nil {
		t.Error("set with zero columns must error")
	}
}

func TestOracleSingletonsForEmptyLabels(t *testing.T) {
	tb := table.New("t", "a", "b")
	tb.MustAddRow(table.IntValue(1), table.IntValue(2))
	got, err := Oracle{Label: func(string, int) string { return "" }}.Align([]*table.Table{tb})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 2 {
		t.Errorf("empty labels must produce singletons: %v", got.Schema)
	}
}

func TestUniqueIntegrationIDs(t *testing.T) {
	// Two clusters sharing the most-common header must get distinct IDs.
	a := table.New("a", "x")
	a.MustAddRow(table.StringValue("p"))
	b := table.New("b", "x")
	b.MustAddRow(table.IntValue(42424242))
	got, err := Holistic{MinSimilarity: 0.99}.Align([]*table.Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) == 2 && got.Schema[0] == got.Schema[1] {
		t.Errorf("duplicate integration IDs: %v", got.Schema)
	}
}

func TestPairwiseScoresPerfectAndEmpty(t *testing.T) {
	tables := []*table.Table{paperdata.T1(), paperdata.T2()}
	truth, _ := fig2Truth().Align(tables)
	p, r, f1 := PairwiseScores(truth, truth)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("self comparison = %v %v %v", p, r, f1)
	}
	p, r, f1 = PairwiseScores(Alignment{Pos: map[ColumnRef]int{}}, truth)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("disjoint comparison = %v %v %v", p, r, f1)
	}
}

func TestVaccineTablesAlign(t *testing.T) {
	// Fig. 7's T4,T5,T6 must align to the 3-ID schema of Fig. 8.
	tables := paperdata.VaccineSet()
	got, err := Holistic{Knowledge: kb.Demo()}.Align(tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 3 {
		t.Fatalf("vaccine schema = %v, want 3 IDs", got.Schema)
	}
	truth := Oracle{Label: func(name string, col int) string {
		switch name {
		case "T4":
			return []string{"vaccine", "approver"}[col]
		case "T5":
			return []string{"country", "approver"}[col]
		case "T6":
			return []string{"vaccine", "country"}[col]
		}
		return ""
	}}
	tr, _ := truth.Align(tables)
	if _, _, f1 := PairwiseScores(got, tr); f1 != 1 {
		t.Errorf("vaccine alignment f1 = %v; schema %v pos %v", f1, got.Schema, got.Pos)
	}
}
