package serve

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// Admission control: every metered endpoint belongs to a class, and each
// class owns a bounded slot pool. A request either takes a slot
// immediately, queues for one under a wait budget, or is shed with a
// structured 429 + Retry-After before any pipeline work runs — so a burst
// past capacity degrades into fast, honest rejections instead of N
// concurrent integrations grinding every client to its deadline.
//
// Shedding is deadline-aware: the admitter tracks an EWMA of recent
// service times and projects the queue wait a new arrival would face
// (queue position x EWMA / slots). A request whose projection exhausts its
// own deadline — or the queue-wait budget — is rejected the moment it
// arrives, never after burning most of its budget waiting for a slot it
// cannot use.

// endpointClass buckets endpoints by cost so cheap catalog reads are never
// starved behind expensive discover/integrate work, and mutations (which
// serialize in the lake anyway) cannot monopolize compute slots.
type endpointClass int

const (
	classRead    endpointClass = iota // cheap lake reads (GET /v1/lake)
	classCompute                      // discover/integrate/pipeline/correlate/resolve
	classMutate                       // lake add/remove
	numClasses
)

// defaultMaxInflight sizes the compute class when Config.MaxInflight is 0:
// pipeline stages parallelize internally, so a small multiple of the CPU
// count saturates the machine; more in-flight work only inflates latency.
func defaultMaxInflight() int {
	return max(4, 4*runtime.GOMAXPROCS(0))
}

// DefaultMaxQueueWait bounds how long an admitted-class request may queue
// for a slot when Config.MaxQueueWait is 0.
const DefaultMaxQueueWait = time.Second

// shedError is a load-shedding rejection: mapped to 429 Too Many Requests
// with a Retry-After hint of when capacity is projected to free up.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("overloaded: %s; retry after %s", e.reason, e.retryAfter.Round(time.Millisecond))
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admitter is one class's bounded slot pool.
type admitter struct {
	slots    chan struct{}
	capacity int
	maxQueue int64 // waiters beyond this shed immediately
	maxWait  time.Duration
	queued   atomic.Int64
	ewmaNS   atomic.Int64 // EWMA of service time; 0 until the first completion
}

func newAdmitter(k int, maxWait time.Duration) *admitter {
	return &admitter{
		slots:    make(chan struct{}, k),
		capacity: k,
		maxQueue: int64(8 * k),
		maxWait:  maxWait,
	}
}

// projectedWait estimates the queue wait at queue position pos: each of
// the capacity slots frees on average once per EWMA service time, so the
// pos-th waiter expects pos/capacity turnovers. Before the first
// completion the EWMA is 0 and the projection optimistically admits to
// the queue — the wait-budget timer still bounds the damage.
func (a *admitter) projectedWait(pos int64) time.Duration {
	return time.Duration(a.ewmaNS.Load() * pos / int64(a.capacity))
}

// retryAfter is the Retry-After hint for a shed at queue position pos.
func (a *admitter) retryAfter(pos int64) time.Duration {
	if d := a.projectedWait(pos); d > time.Second {
		return d
	}
	return time.Second
}

// admit blocks until a slot is free, the context dies, or the wait budget
// runs out. It returns nil exactly when a slot was taken (pair with
// release); a *shedError means the request was rejected without service.
// gauge is the endpoint's queued-requests gauge, maintained while waiting.
func (a *admitter) admit(ctx context.Context, gauge *atomic.Int64) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// All slots busy. Decide up front whether queueing can pay off; every
	// early shed here answers in microseconds, which is the point.
	if a.maxWait <= 0 {
		return &shedError{reason: "at capacity and queueing is disabled", retryAfter: a.retryAfter(1)}
	}
	pos := a.queued.Add(1)
	defer a.queued.Add(-1)
	if pos > a.maxQueue {
		return &shedError{reason: fmt.Sprintf("queue full (%d waiting)", pos-1), retryAfter: a.retryAfter(pos)}
	}
	proj := a.projectedWait(pos)
	if proj > a.maxWait {
		return &shedError{reason: fmt.Sprintf("projected queue wait %s exceeds the %s wait budget", proj.Round(time.Millisecond), a.maxWait), retryAfter: a.retryAfter(pos)}
	}
	if dl, ok := ctx.Deadline(); ok && proj >= time.Until(dl) {
		return &shedError{reason: fmt.Sprintf("projected queue wait %s would exhaust the request deadline", proj.Round(time.Millisecond)), retryAfter: a.retryAfter(pos)}
	}
	gauge.Add(1)
	defer gauge.Add(-1)
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		// The projection under-estimated (or the client hung up): the
		// deadline died in the queue. Surfaced as the context error so the
		// status is the honest 504/503, and counted as a shed by the caller
		// — no service was rendered.
		return ctx.Err()
	case <-timer.C:
		return &shedError{reason: fmt.Sprintf("no slot freed within the %s wait budget", a.maxWait), retryAfter: a.retryAfter(a.queued.Load() + 1)}
	}
}

// release frees the slot and folds the observed service time into the
// EWMA (alpha 1/8) that future admission projections use.
func (a *admitter) release(serviceStart time.Time) {
	<-a.slots
	obs := int64(time.Since(serviceStart))
	for {
		old := a.ewmaNS.Load()
		nw := obs
		if old != 0 {
			nw = old + (obs-old)/8
		}
		if a.ewmaNS.CompareAndSwap(old, nw) {
			return
		}
	}
}
