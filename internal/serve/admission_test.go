package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/persist"
	"repro/internal/table"
	"repro/internal/testutil"
)

// --- admitter unit tests: every shed branch, without HTTP in the way ---

func TestAdmitFastPathAndRelease(t *testing.T) {
	a := newAdmitter(2, time.Second)
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	a.release(time.Now().Add(-10 * time.Millisecond))
	if got := a.ewmaNS.Load(); got < int64(5*time.Millisecond) {
		t.Fatalf("ewma after first release = %v, want ~10ms", time.Duration(got))
	}
	a.release(time.Now())
	if gauge.Load() != 0 {
		t.Fatalf("queued gauge = %d after fast-path admits", gauge.Load())
	}
}

func TestAdmitShedsWhenQueueingDisabled(t *testing.T) {
	a := newAdmitter(1, -1)
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	err := a.admit(context.Background(), &gauge)
	var sh *shedError
	if !errors.As(err, &sh) || !strings.Contains(sh.reason, "queueing is disabled") {
		t.Fatalf("admit at capacity = %v, want queueing-disabled shed", err)
	}
	if sh.retryAfter < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s", sh.retryAfter)
	}
}

func TestAdmitShedsOnProjectedWaitBudget(t *testing.T) {
	a := newAdmitter(1, 100*time.Millisecond)
	a.ewmaNS.Store(int64(time.Hour)) // service times say: the queue is hopeless
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	err := a.admit(context.Background(), &gauge)
	var sh *shedError
	if !errors.As(err, &sh) || !strings.Contains(sh.reason, "wait budget") {
		t.Fatalf("admit = %v, want projected-wait shed", err)
	}
	if sh.retryAfter < time.Hour {
		t.Fatalf("retryAfter = %v, want the projected wait (~1h)", sh.retryAfter)
	}
}

// TestAdmitShedsOnDeadline pins deadline-aware shedding: a request whose
// projected queue wait exhausts its own deadline is rejected on arrival,
// even when the queue-wait budget alone would have let it wait.
func TestAdmitShedsOnDeadline(t *testing.T) {
	a := newAdmitter(1, 2*time.Hour) // budget far beyond the deadline
	a.ewmaNS.Store(int64(time.Minute))
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := a.admit(ctx, &gauge)
	var sh *shedError
	if !errors.As(err, &sh) || !strings.Contains(sh.reason, "deadline") {
		t.Fatalf("admit = %v, want deadline shed", err)
	}
	if gauge.Load() != 0 {
		t.Fatalf("queued gauge = %d after on-arrival shed", gauge.Load())
	}
}

func TestAdmitShedsAfterWaitBudgetExpires(t *testing.T) {
	a := newAdmitter(1, 30*time.Millisecond) // ewma 0: optimistically queues
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.admit(context.Background(), &gauge)
	var sh *shedError
	if !errors.As(err, &sh) || !strings.Contains(sh.reason, "no slot freed") {
		t.Fatalf("admit = %v, want wait-budget-expired shed", err)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("shed after %v, before the wait budget expired", waited)
	}
	if gauge.Load() != 0 {
		t.Fatalf("queued gauge = %d after timed shed", gauge.Load())
	}
}

func TestAdmitSurfacesContextDeathInQueue(t *testing.T) {
	a := newAdmitter(1, time.Hour)
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if err := a.admit(ctx, &gauge); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit with dying ctx = %v, want context.Canceled", err)
	}
}

// --- HTTP-level hardening tests ---

// releasableDiscoverer parks inside the discovery stage until released — a
// deterministic slot-holder for saturation tests.
type releasableDiscoverer struct {
	started chan struct{}
	release chan struct{}
}

func (d releasableDiscoverer) Name() string { return "parkeduntil" }

func (d releasableDiscoverer) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
	d.started <- struct{}{}
	select {
	case <-d.release:
		return nil, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func newSaturationServer(t *testing.T, cfg Config) (releasableDiscoverer, *Server, *httptest.Server) {
	t.Helper()
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	d := releasableDiscoverer{started: make(chan struct{}, 64), release: make(chan struct{})}
	if err := p.Discoverers().Register(d); err != nil {
		t.Fatal(err)
	}
	s := New(p, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return d, s, ts
}

func discoverBody(t *testing.T, methods ...string) []byte {
	t.Helper()
	raw, err := json.Marshal(DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1, Methods: methods})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSaturationShedding is the acceptance saturation test: with compute
// capacity K and a burst of N >> K, exactly the K admitted requests
// succeed, every other request gets a structured 429 with Retry-After,
// the per-endpoint counters reconcile (admitted + shed = N), and the
// goroutine count settles back to baseline after the burst drains.
func TestSaturationShedding(t *testing.T) {
	const K, N = 2, 32
	d, s, ts := newSaturationServer(t, Config{Timeout: time.Minute, MaxInflight: K, MaxQueueWait: -1})
	client := ts.Client()
	body := discoverBody(t, "parkeduntil")
	before := runtime.NumGoroutine()

	// Occupy every compute slot with parked requests.
	type outcome struct {
		status     int
		retryAfter string
		body       errorBody
	}
	results := make(chan outcome, N)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, err := client.Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- outcome{}
			return
		}
		var out outcome
		out.status = resp.StatusCode
		out.retryAfter = resp.Header.Get("Retry-After")
		if resp.StatusCode != http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&out.body)
		}
		resp.Body.Close()
		results <- out
	}
	for range K {
		wg.Add(1)
		go post()
	}
	for range K {
		<-d.started // both slot-holders are inside the discovery stage
	}
	// The burst: everything past capacity must shed immediately.
	for range N - K {
		wg.Add(1)
		go post()
	}
	shed := 0
	for range N - K {
		out := <-results
		if out.status != http.StatusTooManyRequests {
			t.Fatalf("burst request status = %d, want 429 (%+v)", out.status, out)
		}
		if out.retryAfter == "" {
			t.Fatal("shed response missing Retry-After")
		}
		if out.body.Status != http.StatusTooManyRequests || !strings.Contains(out.body.Error, "overloaded") {
			t.Fatalf("shed envelope = %+v", out.body)
		}
		shed++
	}
	close(d.release) // drain the admitted pair
	for range K {
		if out := <-results; out.status != http.StatusOK {
			t.Fatalf("admitted request status = %d, want 200", out.status)
		}
	}
	wg.Wait()

	// Counters reconcile: every arrival is exactly one of admitted/shed,
	// and everything admitted completed.
	var disc EndpointMetrics
	for _, m := range s.MetricsSnapshot() {
		if m.Endpoint == "/v1/discover" {
			disc = m
		}
	}
	if disc.Admitted+disc.Shed != N {
		t.Fatalf("admitted %d + shed %d != %d arrivals", disc.Admitted, disc.Shed, N)
	}
	if disc.Admitted != K || disc.Completed != K || disc.Errors != 0 {
		t.Fatalf("admitted/completed/errors = %d/%d/%d, want %d/%d/0", disc.Admitted, disc.Completed, disc.Errors, K, K)
	}
	if disc.InFlight != 0 || disc.Queued != 0 {
		t.Fatalf("in-flight %d / queued %d after drain, want 0/0", disc.InFlight, disc.Queued)
	}
	if disc.Count != disc.Completed+disc.Errors {
		t.Fatalf("histogram count %d != completed %d + errors %d", disc.Count, disc.Completed, disc.Errors)
	}
	client.Transport.(*http.Transport).CloseIdleConnections()
	testutil.WaitGoroutinesSettle(t, before)
}

// TestQueueWaitShed pins the timed-queue path over HTTP: with one slot
// held and a short queue-wait budget, the second request queues, times
// out, and sheds with 429 + Retry-After.
func TestQueueWaitShed(t *testing.T) {
	d, _, ts := newSaturationServer(t, Config{Timeout: time.Minute, MaxInflight: 1, MaxQueueWait: 40 * time.Millisecond})
	body := discoverBody(t, "parkeduntil")
	first := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- 0
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-d.started
	resp, err := ts.Client().Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timed shed missing Retry-After")
	}
	close(d.release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("slot-holder status = %d, want 200", got)
	}
}

// TestBodyCapStructured413 pins the request-body cap: an oversized POST
// body is refused with a structured 413 envelope, not a connection reset
// or an unbounded decode.
func TestBodyCapStructured413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	huge := fmt.Sprintf(`{"names": [%q]}`, strings.Repeat("x", 4096))
	resp, err := http.Post(ts.URL+"/v1/integrate", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	out := decodeResp[errorBody](t, resp)
	if out.Status != http.StatusRequestEntityTooLarge || out.Error == "" {
		t.Fatalf("413 envelope = %+v", out)
	}
}

// TestMetricsEndpoint pins /metrics: Prometheus text by default, the JSON
// snapshot with ?format=json, counters moving with traffic, and the
// endpoint answering without admission in the way.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for range 3 {
		resp, err := http.Get(ts.URL + "/v1/lake")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"# TYPE dialite_admitted_total counter",
		`dialite_admitted_total{endpoint="/v1/lake"} 3`,
		`dialite_shed_total{endpoint="/v1/lake"} 0`,
		"# TYPE dialite_in_flight gauge",
		`dialite_request_seconds{endpoint="/v1/lake",quantile="0.99"}`,
		`dialite_request_seconds_count{endpoint="/v1/lake"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q\n%s", want, text)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	snaps := decodeResp[[]EndpointMetrics](t, resp)
	if len(snaps) != 11 {
		t.Fatalf("metrics snapshot covers %d endpoints, want 11", len(snaps))
	}
	byPath := map[string]EndpointMetrics{}
	for _, m := range snaps {
		byPath[m.Endpoint] = m
	}
	lk := byPath["/v1/lake"]
	if lk.Admitted != 3 || lk.Completed != 3 || lk.Count != 3 || lk.P50NS <= 0 {
		t.Fatalf("/v1/lake metrics = %+v", lk)
	}
}

// failingFS wraps a persist.FS and fails every file write/sync while
// armed — the disk-full injection for the degraded-serving test.
type failingFS struct {
	persist.FS
	full atomic.Bool
}

var errNoSpace = errors.New("injected: no space left on device")

func (f *failingFS) Create(name string) (persist.File, error) { return f.wrap(f.FS.Create(name)) }
func (f *failingFS) Append(name string) (persist.File, error) { return f.wrap(f.FS.Append(name)) }

func (f *failingFS) wrap(fl persist.File, err error) (persist.File, error) {
	if err != nil {
		return nil, err
	}
	return &failingFile{File: fl, fs: f}, nil
}

type failingFile struct {
	persist.File
	fs *failingFS
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.fs.full.Load() {
		return 0, errNoSpace
	}
	return f.File.Write(p)
}

func (f *failingFile) Sync() error {
	if f.fs.full.Load() {
		return errNoSpace
	}
	return f.File.Sync()
}

// TestDegradedStoreServing pins graceful degradation under persist write
// failure: once the store degrades to read-only, mutations get 503 +
// Retry-After instead of cascading errors, reads keep answering, and
// /healthz flips to "degraded" with the reason surfaced.
func TestDegradedStoreServing(t *testing.T) {
	fsys := &failingFS{FS: persist.NewMemFS()}
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.Create("lake", l, persist.Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWarming(Config{})
	s.Attach(core.FromLake(l), st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	fsys.full.Store(true)
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	resp := postJSON(t, ts.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("add on full disk status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != readOnlyRetryAfter {
		t.Fatalf("Retry-After = %q, want %q", got, readOnlyRetryAfter)
	}
	out := decodeResp[errorBody](t, resp)
	if !strings.Contains(out.Error, "read-only") {
		t.Fatalf("degraded envelope = %+v", out)
	}

	// Reads keep answering from the pre-failure state.
	getResp, err := http.Get(ts.URL + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	if info := decodeResp[LakeResponse](t, getResp); getResp.StatusCode != http.StatusOK || info.Size != 2 {
		t.Fatalf("lake read while degraded: status %d, %+v", getResp.StatusCode, info)
	}

	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeResp[HealthResponse](t, hResp)
	if health.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded", health.Status)
	}
	if health.Persistence == nil || !health.Persistence.ReadOnly || health.Persistence.ReadOnlyReason == "" {
		t.Fatalf("health persistence = %+v", health.Persistence)
	}
	if health.Load.Errors == 0 {
		t.Fatalf("load summary missed the failed mutation: %+v", health.Load)
	}
}

// TestWarmingShedding pins warm-restart readiness end to end: while the
// lake replays, every pipeline endpoint sheds with 503 + Retry-After
// exactly "1", /healthz reports "warming", queued-then-shed requests leak
// no goroutines, and Attach flips /healthz to "ok" and traffic live.
func TestWarmingShedding(t *testing.T) {
	s := NewWarming(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()
	before := runtime.NumGoroutine()

	hResp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if health := decodeResp[HealthResponse](t, hResp); health.Status != "warming" || !health.ReplayInProgress {
		t.Fatalf("warming health = %+v", health)
	}

	const burst = 16
	var wg sync.WaitGroup
	statuses := make(chan *http.Response, burst)
	for range burst {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Error(err)
				return
			}
			statuses <- resp
		}()
	}
	wg.Wait()
	close(statuses)
	for resp := range statuses {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("warming request status = %d, want 503", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != warmingRetryAfter {
			t.Fatalf("warming Retry-After = %q, want %q", got, warmingRetryAfter)
		}
		resp.Body.Close()
	}
	var disc EndpointMetrics
	for _, m := range s.MetricsSnapshot() {
		if m.Endpoint == "/v1/discover" {
			disc = m
		}
	}
	if disc.Shed != burst || disc.Admitted != 0 {
		t.Fatalf("warming sheds = %d / admitted = %d, want %d / 0", disc.Shed, disc.Admitted, burst)
	}
	client.Transport.(*http.Transport).CloseIdleConnections()
	testutil.WaitGoroutinesSettle(t, before)

	// Attach flips it live.
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	s.Attach(p, nil)
	hResp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if health := decodeResp[HealthResponse](t, hResp); health.Status != "ok" || health.ReplayInProgress {
		t.Fatalf("attached health = %+v", health)
	}
	resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("discover after attach = %d, want 200", resp.StatusCode)
	}
}

// TestRetryAfterSecondsFloor pins the Retry-After rendering floor: the
// header is whole seconds rounded up and never "0" — RFC 9110 allows a
// zero delay, but well-behaved clients treat it as "retry immediately",
// which under shedding is exactly the retry storm the hint exists to
// prevent. Sub-second projections (including a zero or negative EWMA
// projection on a cold admitter) must render as "1".
func TestRetryAfterSecondsFloor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{-time.Second, "1"},
		{0, "1"},
		{time.Nanosecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{10 * time.Second, "10"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	// And through the shed path itself: a cold admitter (no completions
	// yet, so the EWMA projection is zero) must produce a hint that
	// renders as "1", never "0".
	a := newAdmitter(1, -1)
	var gauge atomic.Int64
	if err := a.admit(context.Background(), &gauge); err != nil {
		t.Fatal(err)
	}
	err := a.admit(context.Background(), &gauge)
	var sh *shedError
	if !errors.As(err, &sh) {
		t.Fatalf("admit at capacity = %v, want shed", err)
	}
	if got := retryAfterSeconds(sh.retryAfter); got == "0" || got == "" {
		t.Fatalf("cold-admitter shed rendered Retry-After %q", got)
	}
}
