package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/persist"
)

// This file is the serving layer's cluster surface: the shard-side
// endpoints a coordinator scatters over (epoch sampling, table fetch,
// compaction) and the coordinator-side aggregation interfaces (/healthz
// and /metrics reporting per-shard state). The cluster package implements
// the interfaces; serve only type-asserts them on the attached catalog, so
// serve never imports cluster (cluster imports serve for the wire types).

// EpochResponse is the GET /v1/lake/epoch body: the catalog's mutation-
// epoch vector (lake.Catalog.Epochs) plus its current size. The endpoint
// bypasses admission control like /healthz — a coordinator samples it
// before and after every discovery fan-out, and queueing the sample behind
// saturated compute traffic would turn every cluster read into a shed.
type EpochResponse struct {
	Epochs []uint64 `json:"epochs"`
	Size   int      `json:"size"`
}

// lakeEpoch serves the epoch vector. While warming there is no catalog to
// sample, so it answers 503 + Retry-After exactly like a metered endpoint
// would — a coordinator treats that as "shard not ready", not as an error.
func (s *Server) lakeEpoch(w http.ResponseWriter, r *http.Request) {
	p := s.p()
	if p == nil {
		w.Header().Set("Retry-After", warmingRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "lake recovery in progress; retry shortly")
		return
	}
	l := p.Lake()
	writeJSON(w, http.StatusOK, EpochResponse{Epochs: l.Epochs(), Size: l.Size()})
}

// LakeTableResponse is the GET /v1/lake/table?name=X body.
type LakeTableResponse struct {
	Table TableJSON `json:"table"`
}

func (s *Server) lakeTable(ctx context.Context, r *http.Request) (any, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return nil, fmt.Errorf("missing ?name= query parameter")
	}
	t, ok := s.p().Lake().Get(name)
	if !ok {
		return nil, &statusError{code: http.StatusNotFound, msg: fmt.Sprintf("no table %q in lake", name)}
	}
	return LakeTableResponse{Table: EncodeTable(t)}, nil
}

// LakeTablesRequest is the POST /v1/lake/tables body: a batch table fetch.
// The coordinator uses it to materialize a merged discovery top-k in one
// round trip per shard instead of k.
type LakeTablesRequest struct {
	Names []string `json:"names"`
}

// LakeTablesResponse carries the tables that exist; names that do not
// (removed between the caller's ranking and this fetch) land in Missing
// rather than failing the batch — the caller decides what a gap means.
type LakeTablesResponse struct {
	Tables  []TableJSON `json:"tables"`
	Missing []string    `json:"missing,omitempty"`
}

func (s *Server) lakeTables(ctx context.Context, r *http.Request) (any, error) {
	var req LakeTablesRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Names) == 0 {
		return nil, fmt.Errorf("no table names to fetch")
	}
	resp := LakeTablesResponse{Tables: make([]TableJSON, 0, len(req.Names))}
	l := s.p().Lake()
	for _, n := range req.Names {
		if t, ok := l.Get(n); ok {
			resp.Tables = append(resp.Tables, EncodeTable(t))
		} else {
			resp.Missing = append(resp.Missing, n)
		}
	}
	return resp, nil
}

// lakeCompact forces the catalog's index compaction (POST /v1/lake/compact).
// Compaction never changes query answers and appends nothing to the WAL, so
// both the in-memory and the durable path run it directly; it still goes
// through the mutation gate so shutdown's drain ordering holds.
func (s *Server) lakeCompact(ctx context.Context, r *http.Request) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	compact := func() error { s.p().Lake().Compact(); return nil }
	if err := s.mutate(compact, func(*persist.Store) error { return compact() }); err != nil {
		return nil, err
	}
	return LakeResponse{Size: s.p().Lake().Size()}, nil
}

// statusError carries an explicit HTTP status through the generic handler
// path; statusFor honors any error exposing HTTPStatus, including the
// cluster package's typed shard errors.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string   { return e.msg }
func (e *statusError) HTTPStatus() int { return e.code }

// ShardHealth is one remote shard's state as the coordinator's /healthz
// reports it: "ok", "warming", "degraded", "stopping" (the shard's own
// /healthz status) or "down" when the shard is unreachable.
type ShardHealth struct {
	Shard  int    `json:"shard"`
	Addr   string `json:"addr"`
	Status string `json:"status"`
	Size   int    `json:"size,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ShardHealthReporter is implemented by cluster-mode catalogs: /healthz
// type-asserts it on the attached catalog and, when present, aggregates the
// per-shard states into the response (any shard not "ok" degrades the
// coordinator's overall status).
type ShardHealthReporter interface {
	ShardHealth(ctx context.Context) []ShardHealth
}

// ShardMetrics is one shard's fan-out transport counters as the
// coordinator's /metrics reports them. Latency fields are the round-trip
// time of shard calls, from the same log2-bucketed histogram the endpoint
// metrics use.
type ShardMetrics struct {
	Shard   int    `json:"shard"`
	Addr    string `json:"addr"`
	Calls   uint64 `json:"calls"`
	Errors  uint64 `json:"errors"`
	Retries uint64 `json:"retries"`
	Count   uint64 `json:"count"`
	P50NS   int64  `json:"p50_ns"`
	P99NS   int64  `json:"p99_ns"`
	MaxNS   int64  `json:"max_ns"`
	SumNS   int64  `json:"sum_ns"`
}

// ShardMetricsReporter is implemented by cluster-mode catalogs; /metrics
// type-asserts it and renders per-shard series when present.
type ShardMetricsReporter interface {
	ShardMetrics() []ShardMetrics
}

// NameLister is implemented by catalogs that can enumerate table names
// more cheaply than materializing every table (a cluster coordinator would
// otherwise fetch the full catalog over the wire to answer GET /v1/lake).
type NameLister interface {
	TableNames(ctx context.Context) ([]string, error)
}

// Latency is an exported handle on the serving layer's log2-bucketed
// latency histogram, for packages that feed ShardMetrics (the cluster
// shard client records round-trip times in one). Concurrent Observe calls
// are lock-free.
type Latency struct {
	h latHist
}

// Observe records one latency sample.
func (l *Latency) Observe(d time.Duration) { l.h.observe(d) }

// Quantiles reports the histogram's p50/p99 upper bounds, observed max,
// sum, and sample count.
func (l *Latency) Quantiles() (p50, p99, max, sum time.Duration, count uint64) {
	counts, total := l.h.snapshot()
	return l.h.quantile(counts, total, 0.50),
		l.h.quantile(counts, total, 0.99),
		time.Duration(l.h.maxNS.Load()),
		time.Duration(l.h.sumNS.Load()),
		total
}
