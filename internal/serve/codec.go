// Package serve is DIALITE's HTTP face: the paper presents the pipeline as
// a web-served demonstration system (Fig. 1 runs behind an interactive UI),
// and this package is the production shape of that idea — JSON endpoints
// for every pipeline stage (discover, integrate, end-to-end pipeline,
// correlation, entity resolution) and for lake mutation (add/remove),
// served concurrently against one mutable lake.
//
// Every request runs under a context with a per-request timeout; the
// context-first pipeline API propagates cancellation into the index scans,
// the FD closure and the ER pair loop, so an expired or client-cancelled
// query stops computing mid-stage instead of occupying a worker until it
// finishes. Lake mutations are the exception: they are transactional and
// run to completion once started (the deadline is checked before the
// mutation begins). Entity resolution runs request-scoped
// (kb.Annotator.ERScope via core.Pipeline.ResolveEntities), so serving
// unrelated user tables does not grow server memory. Errors are structured
// JSON; shutdown is graceful.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/table"
)

// TableJSON is the wire form of a table: column headers plus row-major
// cells. Cells map JSON-natively — null, bool, number (integral numbers
// decode as Int, others as Float) and string. Both null kinds render as
// JSON null; the missing/produced distinction (± vs ⊥) is presentational
// and does not survive the wire, which no integration or resolution
// *semantics* depend on (nulls of either kind never join, never conflict
// and block nothing).
type TableJSON struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// EncodeTable converts a table to its wire form.
func EncodeTable(t *table.Table) TableJSON {
	out := TableJSON{Name: t.Name, Columns: t.Columns, Rows: make([][]any, 0, t.NumRows())}
	for _, row := range t.Rows {
		r := make([]any, len(row))
		for i, v := range row {
			r[i] = encodeValue(v)
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}

func encodeValue(v table.Value) any {
	switch v.Kind() {
	case table.String:
		return v.Str()
	case table.Int:
		return v.IntVal()
	case table.Float:
		return v.FloatVal()
	case table.Bool:
		return v.BoolVal()
	default: // both null kinds
		return nil
	}
}

// DecodeTable converts a wire table into the engine's form, validating
// shape: every row must have exactly len(Columns) cells and every cell must
// be null, bool, number or string.
func (tj TableJSON) DecodeTable() (*table.Table, error) {
	t := table.New(tj.Name, tj.Columns...)
	for ri, row := range tj.Rows {
		if len(row) != len(tj.Columns) {
			return nil, fmt.Errorf("table %q: row %d has %d cells, want %d", tj.Name, ri, len(row), len(tj.Columns))
		}
		vals := make([]table.Value, len(row))
		for ci, cell := range row {
			v, err := decodeValue(cell)
			if err != nil {
				return nil, fmt.Errorf("table %q: row %d, column %d: %w", tj.Name, ri, ci, err)
			}
			vals[ci] = v
		}
		t.Rows = append(t.Rows, vals)
	}
	return t, nil
}

// decodeValue maps a decoded JSON cell to a Value. Numbers arrive as
// json.Number (the request decoder enables UseNumber, preserving int64
// precision that float64 round-tripping would lose).
func decodeValue(cell any) (table.Value, error) {
	switch c := cell.(type) {
	case nil:
		return table.NullValue(), nil
	case bool:
		return table.BoolValue(c), nil
	case string:
		return table.StringValue(c), nil
	case json.Number:
		if i, err := c.Int64(); err == nil {
			return table.IntValue(i), nil
		}
		f, err := c.Float64()
		if err != nil {
			return table.Value{}, fmt.Errorf("unrepresentable number %q", c.String())
		}
		return table.FloatValue(f), nil
	case float64: // defensive: decoders without UseNumber
		if c == float64(int64(c)) {
			return table.IntValue(int64(c)), nil
		}
		return table.FloatValue(c), nil
	default:
		return table.Value{}, fmt.Errorf("unsupported cell type %T (want null, bool, number or string)", cell)
	}
}
