package serve

import (
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Per-endpoint serving metrics. Everything is lock-free atomics: the
// request path adds a handful of uncontended atomic ops, and /metrics
// scrapes read without stalling traffic. The invariants tests and
// dashboards rely on:
//
//	arrivals  = admitted + shed          (every request is exactly one)
//	admitted  = completed + errors + in-flight
//	histogram count = completed + errors (latency observed once per admit)

// latHist is a log2-bucketed latency histogram: bucket i counts requests
// with latency <= 1µs<<i (the last bucket is unbounded). 36 buckets cover
// 1µs..~34s — far past any sane request deadline — in 288 bytes, and p50/
// p99 are read from the bucket upper bounds, so a reported quantile is an
// upper bound within 2x of the true value.
const histBuckets = 36

type latHist struct {
	counts [histBuckets]atomic.Uint64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

func histBucket(d time.Duration) int {
	us := uint64(d) / uint64(time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k)µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// histBound is bucket i's upper latency bound.
func histBound(i int) time.Duration { return time.Microsecond << i }

func (h *latHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(d)].Add(1)
	h.sumNS.Add(int64(d))
	for {
		old := h.maxNS.Load()
		if int64(d) <= old || h.maxNS.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// snapshot reads the bucket counts once; quantiles over the copy are
// mutually consistent even while requests keep landing.
func (h *latHist) snapshot() (counts [histBuckets]uint64, total uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// quantile reports the q-quantile (0 < q <= 1) as the upper bound of the
// bucket the q*total-th observation landed in; the top bucket reports the
// observed max instead of +Inf.
func (h *latHist) quantile(counts [histBuckets]uint64, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i == histBuckets-1 {
				return time.Duration(h.maxNS.Load())
			}
			return histBound(i)
		}
	}
	return time.Duration(h.maxNS.Load())
}

// endpointMetrics is one endpoint's live counters.
type endpointMetrics struct {
	path      string
	inflight  atomic.Int64
	queued    atomic.Int64
	admitted  atomic.Uint64
	shed      atomic.Uint64
	completed atomic.Uint64
	errored   atomic.Uint64
	lat       latHist
}

// EndpointMetrics is one endpoint's point-in-time serving metrics — the
// element type of GET /metrics?format=json and Server.MetricsSnapshot.
// Latency fields are nanoseconds from the bucketed histogram (upper
// bounds, see latHist); Count is the number of observations behind them.
type EndpointMetrics struct {
	Endpoint  string `json:"endpoint"`
	InFlight  int64  `json:"in_flight"`
	Queued    int64  `json:"queued"`
	Admitted  uint64 `json:"admitted"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Count     uint64 `json:"count"`
	P50NS     int64  `json:"p50_ns"`
	P99NS     int64  `json:"p99_ns"`
	MaxNS     int64  `json:"max_ns"`
	SumNS     int64  `json:"sum_ns"`
}

func (m *endpointMetrics) snapshot() EndpointMetrics {
	counts, total := m.lat.snapshot()
	return EndpointMetrics{
		Endpoint:  m.path,
		InFlight:  m.inflight.Load(),
		Queued:    m.queued.Load(),
		Admitted:  m.admitted.Load(),
		Shed:      m.shed.Load(),
		Completed: m.completed.Load(),
		Errors:    m.errored.Load(),
		Count:     total,
		P50NS:     int64(m.lat.quantile(counts, total, 0.50)),
		P99NS:     int64(m.lat.quantile(counts, total, 0.99)),
		MaxNS:     m.lat.maxNS.Load(),
		SumNS:     m.lat.sumNS.Load(),
	}
}

// MetricsSnapshot reports every metered endpoint's counters, sorted by
// endpoint path. It is what /metrics renders and what tests reconcile
// against.
func (s *Server) MetricsSnapshot() []EndpointMetrics {
	out := make([]EndpointMetrics, 0, len(s.metricsByPath))
	for _, m := range s.metricsOrder {
		out = append(out, m.snapshot())
	}
	return out
}

// LoadSummary aggregates the per-endpoint counters for /healthz: one
// glance says whether the server is currently saturated (in-flight at
// capacity, queue building) or shedding.
type LoadSummary struct {
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
}

func (s *Server) loadSummary() LoadSummary {
	var sum LoadSummary
	for _, m := range s.metricsOrder {
		sum.InFlight += m.inflight.Load()
		sum.Queued += m.queued.Load()
		sum.Admitted += m.admitted.Load()
		sum.Shed += m.shed.Load()
		sum.Errors += m.errored.Load()
	}
	return sum
}

// newEndpointMetrics registers a metered endpoint at construction time;
// the map is read-only once the server is built, so lookups are lock-free.
func (s *Server) newEndpointMetrics(path string) *endpointMetrics {
	m := &endpointMetrics{path: path}
	s.metricsByPath[path] = m
	s.metricsOrder = append(s.metricsOrder, m)
	sort.Slice(s.metricsOrder, func(i, j int) bool { return s.metricsOrder[i].path < s.metricsOrder[j].path })
	return m
}

// metricsHandler serves GET /metrics: Prometheus text exposition by
// default, the JSON snapshot with ?format=json. It bypasses admission and
// works while warming or degraded — observability must answer exactly when
// the serving path is refusing.
// shardMetrics reports the attached catalog's per-shard transport counters,
// or nil outside cluster mode (no catalog attached, or a local one).
func (s *Server) shardMetrics() []ShardMetrics {
	p := s.p()
	if p == nil {
		return nil
	}
	rep, ok := p.Lake().(ShardMetricsReporter)
	if !ok {
		return nil
	}
	return rep.ShardMetrics()
}

func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		if r.URL.Query().Get("scope") == "shards" {
			writeJSON(w, http.StatusOK, s.shardMetrics())
			return
		}
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
		return
	}
	var b strings.Builder
	counter := func(name, help string, value func(EndpointMetrics) uint64, snaps []EndpointMetrics) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, m := range snaps {
			fmt.Fprintf(&b, "%s{endpoint=%q} %d\n", name, m.Endpoint, value(m))
		}
	}
	gauge := func(name, help string, value func(EndpointMetrics) int64, snaps []EndpointMetrics) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, m := range snaps {
			fmt.Fprintf(&b, "%s{endpoint=%q} %d\n", name, m.Endpoint, value(m))
		}
	}
	snaps := s.MetricsSnapshot()
	counter("dialite_admitted_total", "Requests admitted past admission control.", func(m EndpointMetrics) uint64 { return m.Admitted }, snaps)
	counter("dialite_shed_total", "Requests shed by admission control (429/503 before any work).", func(m EndpointMetrics) uint64 { return m.Shed }, snaps)
	counter("dialite_completed_total", "Admitted requests that finished with a 2xx.", func(m EndpointMetrics) uint64 { return m.Completed }, snaps)
	counter("dialite_errors_total", "Admitted requests that finished with an error status.", func(m EndpointMetrics) uint64 { return m.Errors }, snaps)
	gauge("dialite_in_flight", "Requests currently executing.", func(m EndpointMetrics) int64 { return m.InFlight }, snaps)
	gauge("dialite_queued", "Requests currently waiting for an admission slot.", func(m EndpointMetrics) int64 { return m.Queued }, snaps)
	fmt.Fprintf(&b, "# HELP dialite_request_seconds Request latency (arrival to response), bucketed upper-bound quantiles.\n# TYPE dialite_request_seconds summary\n")
	for _, m := range snaps {
		fmt.Fprintf(&b, "dialite_request_seconds{endpoint=%q,quantile=\"0.5\"} %g\n", m.Endpoint, time.Duration(m.P50NS).Seconds())
		fmt.Fprintf(&b, "dialite_request_seconds{endpoint=%q,quantile=\"0.99\"} %g\n", m.Endpoint, time.Duration(m.P99NS).Seconds())
		fmt.Fprintf(&b, "dialite_request_seconds_sum{endpoint=%q} %g\n", m.Endpoint, time.Duration(m.SumNS).Seconds())
		fmt.Fprintf(&b, "dialite_request_seconds_count{endpoint=%q} %d\n", m.Endpoint, m.Count)
	}
	// Cluster mode: per-shard fan-out transport counters + round-trip
	// latency, labeled by shard index and address.
	if shards := s.shardMetrics(); len(shards) > 0 {
		shardCounter := func(name, help string, value func(ShardMetrics) uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, m := range shards {
				fmt.Fprintf(&b, "%s{shard=\"%d\",addr=%q} %d\n", name, m.Shard, m.Addr, value(m))
			}
		}
		shardCounter("dialite_shard_calls_total", "Coordinator-to-shard calls attempted (retries counted once).", func(m ShardMetrics) uint64 { return m.Calls })
		shardCounter("dialite_shard_errors_total", "Coordinator-to-shard calls that failed after retries.", func(m ShardMetrics) uint64 { return m.Errors })
		shardCounter("dialite_shard_retries_total", "Coordinator-to-shard attempt retries (idempotent reads only).", func(m ShardMetrics) uint64 { return m.Retries })
		fmt.Fprintf(&b, "# HELP dialite_shard_rtt_seconds Shard call round-trip latency, bucketed upper-bound quantiles.\n# TYPE dialite_shard_rtt_seconds summary\n")
		for _, m := range shards {
			fmt.Fprintf(&b, "dialite_shard_rtt_seconds{shard=\"%d\",addr=%q,quantile=\"0.5\"} %g\n", m.Shard, m.Addr, time.Duration(m.P50NS).Seconds())
			fmt.Fprintf(&b, "dialite_shard_rtt_seconds{shard=\"%d\",addr=%q,quantile=\"0.99\"} %g\n", m.Shard, m.Addr, time.Duration(m.P99NS).Seconds())
			fmt.Fprintf(&b, "dialite_shard_rtt_seconds_sum{shard=\"%d\",addr=%q} %g\n", m.Shard, m.Addr, time.Duration(m.SumNS).Seconds())
			fmt.Fprintf(&b, "dialite_shard_rtt_seconds_count{shard=\"%d\",addr=%q} %d\n", m.Shard, m.Addr, m.Count)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
