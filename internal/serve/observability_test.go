package serve

// Observability regression pins: the /metrics empty-histogram quantile
// rendering and the /healthz effective-vs-requested sketch engine
// surfacing. Both exist because an operator reading these endpoints acts
// on what they say — a phantom latency on an idle endpoint or a silently
// ignored -sketch flag sends that action in the wrong direction.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/lshensemble"
	"repro/internal/paperdata"
	"repro/internal/sketch"
)

// TestMetricsZeroCompletionQuantiles pins the empty-histogram rendering:
// an endpoint with zero completed requests reports p50 = p99 = 0 — not
// the first bucket's upper bound (1µs), which would read as a phantom
// latency on endpoints that have never served. After one completion the
// quantiles turn nonzero for that endpoint only.
func TestMetricsZeroCompletionQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	fetch := func() map[string]EndpointMetrics {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics?format=json")
		if err != nil {
			t.Fatal(err)
		}
		byPath := map[string]EndpointMetrics{}
		for _, m := range decodeResp[[]EndpointMetrics](t, resp) {
			byPath[m.Endpoint] = m
		}
		return byPath
	}

	// The snapshot request itself is not metered past its own endpoint, so
	// at this point no metered endpoint has completed anything... except
	// /metrics is unmetered entirely (it bypasses admission). Every
	// endpoint must read zero across the histogram fields.
	for path, m := range fetch() {
		if m.Count != 0 || m.P50NS != 0 || m.P99NS != 0 || m.MaxNS != 0 || m.SumNS != 0 {
			t.Errorf("%s: zero-completion metrics = %+v, want all-zero histogram", path, m)
		}
	}

	// The Prometheus text must render literal zeros too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`dialite_request_seconds{endpoint="/v1/lake",quantile="0.5"} 0`,
		`dialite_request_seconds{endpoint="/v1/lake",quantile="0.99"} 0`,
		`dialite_request_seconds_count{endpoint="/v1/lake"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus text missing %q\n%s", want, buf.String())
		}
	}

	// One completion on /v1/lake: its quantiles turn positive; everything
	// else stays zero.
	lr, err := http.Get(ts.URL + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	for path, m := range fetch() {
		if path == "/v1/lake" {
			if m.Count != 1 || m.P50NS <= 0 || m.P99NS <= 0 {
				t.Errorf("/v1/lake after one request = %+v, want count 1 and positive quantiles", m)
			}
			continue
		}
		if m.P50NS != 0 || m.P99NS != 0 {
			t.Errorf("%s: idle endpoint got quantiles %d/%d after traffic elsewhere", path, m.P50NS, m.P99NS)
		}
	}
}

// TestHealthzSketchEngineMismatch pins the warm-restart engine surfacing:
// a lake recovered from a snapshot keeps its persisted sketch engine
// regardless of the -sketch flag, and /healthz must say so — effective
// engine, requested engine, and an explicit mismatch bit — instead of
// letting the operator believe the flag took effect.
func TestHealthzSketchEngineMismatch(t *testing.T) {
	health := func(t *testing.T, requested string, opts lake.Options) map[string]any {
		t.Helper()
		p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo(), LakeOptions: opts})
		if err != nil {
			t.Fatal(err)
		}
		s := New(p, Config{RequestedSketchEngine: requested})
		rec := newTestResponse(t, s, "/healthz")
		var out map[string]any
		if err := json.Unmarshal(rec, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	kmvLake := lake.Options{LSH: lshensemble.Options{Engine: sketch.KMV}}

	// Warm restart with a kmv-persisted lake while the operator asked for
	// minhash: both engines surfaced, mismatch set.
	h := health(t, "minhash", kmvLake)
	if h["sketch_engine"] != "kmv" {
		t.Errorf("sketch_engine = %v, want kmv", h["sketch_engine"])
	}
	if h["requested_sketch_engine"] != "minhash" {
		t.Errorf("requested_sketch_engine = %v, want minhash", h["requested_sketch_engine"])
	}
	if h["sketch_engine_mismatch"] != true {
		t.Errorf("sketch_engine_mismatch = %v, want true", h["sketch_engine_mismatch"])
	}

	// Request matches the effective engine: no mismatch, and the omitempty
	// bit disappears from the JSON rather than reading false-but-present.
	h = health(t, "kmv", kmvLake)
	if h["requested_sketch_engine"] != "kmv" {
		t.Errorf("requested_sketch_engine = %v, want kmv", h["requested_sketch_engine"])
	}
	if _, present := h["sketch_engine_mismatch"]; present {
		t.Errorf("sketch_engine_mismatch present on a match: %v", h["sketch_engine_mismatch"])
	}

	// No requested engine (flag unset): neither field appears — there is
	// nothing to mismatch against.
	h = health(t, "", lake.Options{})
	if h["sketch_engine"] != "minhash" {
		t.Errorf("default sketch_engine = %v, want minhash", h["sketch_engine"])
	}
	for _, field := range []string{"requested_sketch_engine", "sketch_engine_mismatch"} {
		if _, present := h[field]; present {
			t.Errorf("%s present with no requested engine", field)
		}
	}
}

// newTestResponse performs one GET against a handler without a listener
// and returns the response body.
func newTestResponse(t *testing.T, s *Server, path string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Body.Bytes()
}
