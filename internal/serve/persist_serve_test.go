package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/persist"
	"repro/internal/sketch"
	"repro/internal/table"
	"repro/internal/testutil"
)

// TestWarmingServer pins the warm-restart surface: a server started before
// its pipeline exists answers every endpoint with 503 + Retry-After and
// reports the replay on /healthz, then flips live atomically on Attach.
func TestWarmingServer(t *testing.T) {
	s := NewWarming(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming healthz status = %d, want 200", resp.StatusCode)
	}
	health := decodeResp[HealthResponse](t, resp)
	if health.Status != "warming" || !health.ReplayInProgress {
		t.Fatalf("warming health = %+v", health)
	}
	resp = postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming discover status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("warming 503 carries no Retry-After header")
	}
	if e := decodeResp[errorBody](t, resp); !strings.Contains(e.Error, "recovery in progress") {
		t.Errorf("warming error = %q", e.Error)
	}

	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	s.Attach(p, nil)
	resp = postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-attach discover status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = decodeResp[HealthResponse](t, resp)
	if health.Status != "ok" || health.ReplayInProgress || health.Persistence != nil {
		t.Fatalf("post-attach health = %+v", health)
	}
	if health.SketchEngine != "minhash" {
		t.Fatalf("post-attach sketch engine = %q, want minhash", health.SketchEngine)
	}
}

// TestHealthzReportsSketchEngine pins the engine surface: a lake built on
// the KMV engine serves discovery over HTTP and reports "kmv" on /healthz.
func TestHealthzReportsSketchEngine(t *testing.T) {
	cfg := core.Config{Knowledge: kb.Demo()}
	cfg.LakeOptions.LSH.Engine = sketch.KMV
	p, err := core.New(paperdata.CovidLake(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if health := decodeResp[HealthResponse](t, resp); health.SketchEngine != "kmv" {
		t.Fatalf("health sketch engine = %q, want kmv", health.SketchEngine)
	}
	resp = postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{
		Query: EncodeTable(paperdata.T1()), QueryColumn: 1, Methods: []string{"lsh-join"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kmv discover status = %d", resp.StatusCode)
	}
	if out := decodeResp[DiscoverResponse](t, resp); len(out.PerMethod["lsh-join"]) == 0 {
		t.Fatal("kmv lsh-join discovery returned nothing")
	}
}

// newPersistedServer builds a pipeline over the COVID lake, a MemFS-backed
// store for it, and a server with both attached.
func newPersistedServer(t *testing.T) (*persist.MemFS, *Server, *httptest.Server) {
	t.Helper()
	fsys := persist.NewMemFS()
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.Create("lake", l, persist.Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWarming(Config{})
	s.Attach(core.FromLake(l), st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return fsys, s, ts
}

// TestDurableMutationsAndHealthz pins the persisted serving path: lake
// mutations route through the store (visible as WAL growth on /healthz and
// as recovered state on a later Open), and /healthz carries the
// persistence counters.
func TestDurableMutationsAndHealthz(t *testing.T) {
	fsys, s, ts := newPersistedServer(t)
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	resp := postJSON(t, ts.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	if out := decodeResp[LakeResponse](t, resp); out.Size != 3 {
		t.Errorf("size after durable add = %d", out.Size)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeResp[HealthResponse](t, resp)
	if health.Status != "ok" || health.Persistence == nil {
		t.Fatalf("health = %+v", health)
	}
	if p := health.Persistence; p.Seq != 1 || p.WALRecords != 1 || p.FormatMajor != persist.FormatMajor || p.LastSync.IsZero() {
		t.Fatalf("persistence health = %+v", p)
	}
	// The acknowledged mutation is already on disk: power-cycle the
	// filesystem (dropping everything unsynced) and recover.
	if err := s.store.Load().Close(); err != nil {
		t.Fatal(err)
	}
	fsys.PowerCycle()
	st, err := persist.Open("lake", persist.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lake().Get("T9"); !ok {
		t.Fatal("durable add lost after power cycle")
	}
	if st.Lake().Size() != 3 {
		t.Fatalf("recovered size = %d", st.Lake().Size())
	}
}

// gatedFS wraps a persist.FS and, while the gate is armed, parks every
// File.Sync on the gate channel — a deterministic in-flight WAL fsync for
// the shutdown-ordering test.
type gatedFS struct {
	persist.FS
	mu      sync.Mutex
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedFS) arm() (release func(), entered chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gate = make(chan struct{})
	g.entered = make(chan struct{}, 1)
	gate := g.gate
	return func() { close(gate) }, g.entered
}

func (g *gatedFS) wrap(f persist.File, err error) (persist.File, error) {
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, fs: g}, nil
}

func (g *gatedFS) Create(name string) (persist.File, error) { return g.wrap(g.FS.Create(name)) }
func (g *gatedFS) Append(name string) (persist.File, error) { return g.wrap(g.FS.Append(name)) }

type gatedFile struct {
	persist.File
	fs *gatedFS
}

func (f *gatedFile) Sync() error {
	f.fs.mu.Lock()
	gate, entered := f.fs.gate, f.fs.entered
	f.fs.mu.Unlock()
	if gate != nil {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	return f.File.Sync()
}

// TestShutdownDrainsMutationsAndFlushesWAL pins the shutdown ordering fix:
// when the serve context is cancelled while a durable mutation is mid-
// fsync, the server (1) refuses new mutations with 503, (2) waits for the
// in-flight one to commit and acknowledge, and (3) syncs + closes the WAL
// — all before ListenAndServe returns. The mutation that got its 200 is
// then recoverable from a power-cycled filesystem.
func TestShutdownDrainsMutationsAndFlushesWAL(t *testing.T) {
	mem := persist.NewMemFS()
	fsys := &gatedFS{FS: mem}
	l, err := lake.New(paperdata.CovidLake(), lake.Options{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.Create("lake", l, persist.Options{FS: fsys, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWarming(Config{Timeout: time.Minute})
	s.Attach(core.FromLake(l), st)
	addr := testutil.FreeLocalAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, addr) }()
	for i := 0; i < 100; i++ {
		if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Park a durable add inside its WAL fsync.
	release, entered := fsys.arm()
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	respc := make(chan *http.Response, 1)
	go func() {
		raw, _ := json.Marshal(LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
		resp, err := http.Post("http://"+addr+"/v1/lake/add", "application/json", bytes.NewReader(raw))
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()
	<-entered // the mutation provably holds the drain gate, mid-fsync
	cancel()  // SIGTERM equivalent

	// Shutdown is now draining: it must not finish while the mutation is
	// parked, and new mutations must be refused — queries still answer.
	select {
	case <-served:
		t.Fatal("ListenAndServe returned while a mutation held the drain gate")
	case <-time.After(100 * time.Millisecond):
	}
	raw, _ := json.Marshal(LakeRemoveRequest{Names: []string{"T2"}})
	if resp, err := http.Post("http://"+addr+"/v1/lake/remove", "application/json", bytes.NewReader(raw)); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("mutation during drain status = %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}

	release() // let the fsync complete
	select {
	case resp := <-respc:
		if resp == nil {
			t.Fatal("in-flight mutation failed at the transport level")
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drained mutation status = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight mutation never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ListenAndServe returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
	// The 200-acknowledged mutation survives a power failure immediately
	// after shutdown: WAL-before-ack plus the shutdown flush make it
	// durable, not merely applied in memory.
	mem.PowerCycle()
	st2, err := persist.Open("lake", persist.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lake().Get("T9"); !ok {
		t.Fatal("acknowledged mutation lost across shutdown + power cycle")
	}
}
