package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
	"repro/internal/testutil"
)

// newTestServer builds a server over the demo lake {T2, T3}.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeResp[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDiscoverHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeResp[DiscoverResponse](t, resp)
	if len(out.PerMethod["santos-union"]) == 0 || out.PerMethod["santos-union"][0].Table != "T2" {
		t.Errorf("santos results = %+v", out.PerMethod["santos-union"])
	}
	if len(out.PerMethod["lsh-join"]) == 0 || out.PerMethod["lsh-join"][0].Table != "T3" {
		t.Errorf("lsh results = %+v", out.PerMethod["lsh-join"])
	}
	if strings.Join(out.IntegrationSet, ",") != "T1,T2,T3" {
		t.Errorf("integration set = %v", out.IntegrationSet)
	}
}

func TestPipelineRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/pipeline", PipelineRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeResp[PipelineResponse](t, resp)
	if got := len(out.Integration.Table.Rows); got != 7 {
		t.Errorf("integrated rows = %d, want 7 (Fig. 3)", got)
	}
	if out.Integration.Operator != "alite-fd" {
		t.Errorf("operator = %q", out.Integration.Operator)
	}
}

func TestIntegrateByNameAndCorrelate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/integrate", IntegrateRequest{
		Names:  []string{"T2", "T3"},
		Tables: []TableJSON{EncodeTable(paperdata.T1())},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("integrate status = %d", resp.StatusCode)
	}
	integ := decodeResp[IntegrateResponse](t, resp)
	resp = postJSON(t, ts.URL+"/v1/correlate", CorrelateRequest{
		Table: integ.Table,
		ColA:  paperdata.ColVaccRate,
		ColB:  paperdata.ColDeathRate,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correlate status = %d", resp.StatusCode)
	}
	out := decodeResp[CorrelateResponse](t, resp)
	if out.N != 3 {
		t.Errorf("correlate n = %d, want 3", out.N)
	}
}

func TestResolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Table: EncodeTable(paperdata.Fig8bExpected())})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeResp[ResolveResponse](t, resp)
	if len(out.Resolved.Rows) != 2 {
		t.Errorf("resolved entities = %d, want 2 (Fig. 8(d))", len(out.Resolved.Rows))
	}
}

func TestLakeAddRemove(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	resp := postJSON(t, ts.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	if out := decodeResp[LakeResponse](t, resp); out.Size != 3 {
		t.Errorf("size after add = %d", out.Size)
	}
	// Duplicate add is a client error with a structured body.
	resp = postJSON(t, ts.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate add status = %d", resp.StatusCode)
	}
	if e := decodeResp[errorBody](t, resp); !strings.Contains(e.Error, "duplicate") {
		t.Errorf("duplicate add error = %q", e.Error)
	}
	resp = postJSON(t, ts.URL+"/v1/lake/remove", LakeRemoveRequest{Names: []string{"T9"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	if out := decodeResp[LakeResponse](t, getResp); out.Size != 2 || strings.Join(out.Tables, ",") != "T2,T3" {
		t.Errorf("lake info = %+v", out)
	}
}

func TestMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	out := decodeResp[errorBody](t, resp)
	if !strings.Contains(out.Error, "malformed") || out.Status != http.StatusBadRequest {
		t.Errorf("error body = %+v", out)
	}
	// Unknown fields are rejected too (typo protection).
	resp, err = http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(`{"quarry": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMethodAndPathErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Wrong method on a known endpoint.
	resp, err := http.Get(ts.URL + "/v1/discover")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/discover status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
	// A trailing-slash variant is an unknown path, not a method error —
	// even when the method would have matched the slash-less endpoint.
	resp, err = http.Get(ts.URL + "/healthz/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /healthz/ status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown endpoint gets the structured 404.
	resp, err = http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if out := decodeResp[errorBody](t, resp); !strings.Contains(out.Error, "/v1/nope") {
		t.Errorf("404 body = %+v", out)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if out := decodeResp[errorBody](t, resp); out.Status != http.StatusGatewayTimeout {
		t.Errorf("error body = %+v", out)
	}
}

// TestConcurrentQueriesDuringMutation drives discover and resolve requests
// concurrently with lake add/remove churn — the serving contract over the
// mutable lake. CI runs this package under -race.
func TestConcurrentQueriesDuringMutation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan string, rounds*3)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch g {
				case 0: // discovery traffic
					resp := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1, Methods: []string{"lsh-join"}})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("discover status %d", resp.StatusCode)
					}
					resp.Body.Close()
				case 1: // ER traffic (request-scoped annotator)
					resp := postJSON(t, ts.URL+"/v1/resolve", ResolveRequest{Table: EncodeTable(paperdata.Fig8bExpected())})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("resolve status %d", resp.StatusCode)
					}
					resp.Body.Close()
				case 2: // mutation churn
					extra := table.New(fmt.Sprintf("churn-%d", i), "City", "Cases")
					extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(int64(i)))
					resp := postJSON(t, ts.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("add status %d", resp.StatusCode)
					}
					resp.Body.Close()
					resp = postJSON(t, ts.URL+"/v1/lake/remove", LakeRemoveRequest{Names: []string{extra.Name}})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("remove status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	in := table.New("mix", "a", "b", "c", "d")
	in.MustAddRow(table.StringValue("x"), table.IntValue(1<<60), table.FloatValue(2.5), table.BoolValue(true))
	in.MustAddRow(table.NullValue(), table.ProducedNull(), table.IntValue(-7), table.StringValue("±"))
	raw, err := json.Marshal(EncodeTable(in))
	if err != nil {
		t.Fatal(err)
	}
	var tj TableJSON
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&tj); err != nil {
		t.Fatal(err)
	}
	out, err := tj.DecodeTable()
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	// Values survive (both null kinds land as missing nulls; int64 precision
	// is preserved through json.Number).
	if got := out.Cell(0, 1); got.Kind() != table.Int || got.IntVal() != 1<<60 {
		t.Errorf("big int cell = %v (%v)", got, got.Kind())
	}
	if got := out.Cell(1, 0); got.Kind() != table.Null {
		t.Errorf("null cell kind = %v", got.Kind())
	}
	if got := out.Cell(1, 1); got.Kind() != table.Null {
		t.Errorf("produced null arrives as missing null, got %v", got.Kind())
	}
	if got := out.Cell(1, 3); got.Kind() != table.String || got.Str() != "±" {
		t.Errorf("literal ± string must stay a string, got %v (%v)", got, got.Kind())
	}
	// Shape violations are rejected.
	bad := TableJSON{Name: "bad", Columns: []string{"a"}, Rows: [][]any{{"x", "y"}}}
	if _, err := bad.DecodeTable(); err == nil {
		t.Error("ragged row must error")
	}
	bad = TableJSON{Name: "bad", Columns: []string{"a"}, Rows: [][]any{{[]any{"nested"}}}}
	if _, err := bad.DecodeTable(); err == nil {
		t.Error("nested cell must error")
	}
}

// parkedDiscoverer blocks inside the discovery stage until its context is
// cancelled — a deterministic in-flight request for the shutdown test.
type parkedDiscoverer struct{ started chan struct{} }

func (d parkedDiscoverer) Name() string { return "parked" }

func (d parkedDiscoverer) Discover(ctx context.Context, l *lake.Lake, q *table.Table, queryCol, k int) ([]discovery.Result, error) {
	close(d.started)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestShutdownCancelsInFlightRequests pins the graceful-shutdown contract:
// cancelling the serve context aborts in-flight request contexts (the
// handler returns a structured 503 at its next checkpoint) and
// ListenAndServe returns nil promptly, instead of waiting out the
// requests' own deadlines.
func TestShutdownCancelsInFlightRequests(t *testing.T) {
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo()})
	if err != nil {
		t.Fatal(err)
	}
	parked := parkedDiscoverer{started: make(chan struct{})}
	if err := p.Discoverers().Register(parked); err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{Timeout: time.Minute}) // far longer than the test
	addr := testutil.FreeLocalAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, addr) }()
	for i := 0; i < 100; i++ {
		if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	respc := make(chan *http.Response, 1)
	go func() {
		raw, _ := json.Marshal(DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1, Methods: []string{"parked"}})
		resp, err := http.Post("http://"+addr+"/v1/discover", "application/json", bytes.NewReader(raw))
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()
	<-parked.started // the request is provably mid-discovery
	cancel()
	select {
	case resp := <-respc:
		if resp == nil {
			t.Fatal("in-flight request failed at the transport level")
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("in-flight request status = %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never returned after shutdown")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ListenAndServe returned %v, want nil on clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after shutdown")
	}
}
