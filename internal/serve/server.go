package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/er"
	"repro/internal/persist"
	"repro/internal/table"
)

// Config tunes the server.
type Config struct {
	// Timeout bounds each request's wall time; the request context expires
	// at the deadline and every pipeline stage aborts at its next
	// cancellation checkpoint. 0 means DefaultTimeout; negative disables.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight caps concurrently executing compute requests
	// (discover/integrate/pipeline/correlate/resolve). Lake mutations get
	// an independent pool of the same size and cheap lake reads get 8x, so
	// neither is starved behind expensive pipeline work. 0 means
	// defaultMaxInflight (4x GOMAXPROCS, at least 4); negative disables the
	// cap.
	MaxInflight int
	// MaxQueueWait bounds how long an at-capacity request may queue for an
	// admission slot before it is shed with 429 + Retry-After; requests
	// whose projected wait already exceeds this (or their own deadline) are
	// shed on arrival. 0 means DefaultMaxQueueWait; negative disables
	// queueing entirely — at-capacity requests shed immediately.
	MaxQueueWait time.Duration
	// RequestedSketchEngine is the sketch engine the operator asked for
	// (e.g. the -sketch flag), surfaced on /healthz beside the engine the
	// attached lake actually runs on. On a warm restart the persisted
	// snapshot's engine wins, and the two can disagree — /healthz then sets
	// sketch_engine_mismatch so the discrepancy is observable, not just a
	// startup log line. Empty means the operator expressed no preference
	// and no mismatch is ever reported.
	RequestedSketchEngine string
}

// Defaults for Config zero values.
const (
	DefaultTimeout      = 30 * time.Second
	DefaultMaxBodyBytes = 32 << 20
)

// Server serves one DIALITE pipeline over HTTP. Handlers are safe for
// concurrent use: discovery and analysis run concurrently with each other
// and with lake mutations (the lake's concurrency contract), and every
// request is independently scoped — context, timeout, and ER annotation
// cache.
//
// A server may start before its pipeline exists (NewWarming): while a
// persisted lake replays its write-ahead log, the listener is already up
// and answers every pipeline endpoint with 503 + Retry-After, and /healthz
// reports the replay. Attach flips it live once recovery finishes.
type Server struct {
	pipe  atomic.Pointer[core.Pipeline]
	store atomic.Pointer[persist.Store]
	cfg   Config
	mux   *http.ServeMux

	// Admission pools by endpoint class, and the per-endpoint metrics
	// behind /metrics. Both are fully built in NewWarming and read-only
	// afterwards, so the request path touches them without locks.
	admit         [numClasses]*admitter
	metricsByPath map[string]*endpointMetrics
	metricsOrder  []*endpointMetrics

	// Shutdown ordering: closing refuses new mutations, mutGate drains the
	// in-flight ones (mutations hold it shared; shutdown takes it exclusive),
	// and only then is the WAL synced and closed — so ListenAndServe never
	// returns with an acknowledged mutation still volatile.
	closing atomic.Bool
	mutGate sync.RWMutex
}

// New builds a server over a constructed pipeline.
func New(p *core.Pipeline, cfg Config) *Server {
	s := NewWarming(cfg)
	s.Attach(p, nil)
	return s
}

// NewWarming builds a server with no pipeline yet: every pipeline endpoint
// answers 503 with a Retry-After hint until Attach is called. It exists so
// a warm restart can bind its port (and expose /healthz) immediately,
// while snapshot load + WAL replay proceed behind it.
func NewWarming(cfg Config) *Server {
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = defaultMaxInflight()
	}
	if cfg.MaxQueueWait == 0 {
		cfg.MaxQueueWait = DefaultMaxQueueWait
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), metricsByPath: map[string]*endpointMetrics{}}
	k := cfg.MaxInflight
	if k < 0 {
		k = 1 << 20 // "unbounded": far past any plausible connection count
	}
	// Mutations serialize in the lake anyway, so their pool exists to keep
	// them from occupying compute slots, not to parallelize them. Reads are
	// an order of magnitude cheaper than pipeline work; 8x keeps catalog
	// queries answering while the compute class saturates.
	s.admit[classCompute] = newAdmitter(k, cfg.MaxQueueWait)
	s.admit[classMutate] = newAdmitter(k, cfg.MaxQueueWait)
	s.admit[classRead] = newAdmitter(8*k, cfg.MaxQueueWait)
	endpoints := map[string]struct {
		method string
		class  endpointClass
		fn     func(context.Context, *http.Request) (any, error)
	}{
		"/v1/discover":     {http.MethodPost, classCompute, s.discover},
		"/v1/integrate":    {http.MethodPost, classCompute, s.integrate},
		"/v1/pipeline":     {http.MethodPost, classCompute, s.pipeline},
		"/v1/correlate":    {http.MethodPost, classCompute, s.correlate},
		"/v1/resolve":      {http.MethodPost, classCompute, s.resolve},
		"/v1/lake/add":     {http.MethodPost, classMutate, s.lakeAdd},
		"/v1/lake/remove":  {http.MethodPost, classMutate, s.lakeRemove},
		"/v1/lake/compact": {http.MethodPost, classMutate, s.lakeCompact},
		"/v1/lake":         {http.MethodGet, classRead, s.lakeInfo},
		"/v1/lake/table":   {http.MethodGet, classRead, s.lakeTable},
		"/v1/lake/tables":  {http.MethodPost, classRead, s.lakeTables},
	}
	for path, ep := range endpoints {
		s.mux.HandleFunc(ep.method+" "+path, s.handle(s.newEndpointMetrics(path), ep.class, ep.fn))
	}
	// /healthz, /metrics and /v1/lake/epoch bypass admission and metering:
	// the first two must answer exactly when the serving path is saturated
	// or refusing, and the epoch endpoint is the coordinator's torn-read
	// sample — queueing it behind saturated compute traffic would shed
	// every cluster read.
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metricsHandler)
	s.mux.HandleFunc("GET /v1/lake/epoch", s.lakeEpoch)
	methods := map[string]string{"/healthz": http.MethodGet, "/metrics": http.MethodGet, "/v1/lake/epoch": http.MethodGet}
	for path, ep := range endpoints {
		methods[path] = ep.method
	}
	// The fallback keeps every error structured: a known path reached with
	// the wrong method is 405 (a catch-all "/" pattern preempts the mux's
	// built-in method check, so it is reproduced here), everything else —
	// including trailing-slash variants, which are not registered paths —
	// is 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if method, known := methods[r.URL.Path]; known && r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("%s requires %s", r.URL.Path, method))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("no endpoint %s (see /v1/{discover,integrate,pipeline,correlate,resolve,lake})", r.URL.Path))
	})
	return s
}

// Attach binds the pipeline (and, for a persisted lake, its store) and
// flips the server live. store may be nil for an in-memory lake; p must
// not be nil. When a store is attached, lake mutations route through it —
// logged and fsynced before they are acknowledged — and shutdown syncs
// and closes its WAL after draining in-flight mutations.
func (s *Server) Attach(p *core.Pipeline, store *persist.Store) {
	if store != nil {
		s.store.Store(store)
	}
	s.pipe.Store(p) // last: readiness is observed through this pointer
}

// p returns the attached pipeline, or nil while warming.
func (s *Server) p() *core.Pipeline { return s.pipe.Load() }

// HealthResponse is the /healthz body. Persistence is present only when
// the lake is persisted; ReplayInProgress is true while the server is up
// but the pipeline is still recovering (warming restarts).
type HealthResponse struct {
	Status           string `json:"status"` // "ok", "warming", "degraded" or "stopping"
	ReplayInProgress bool   `json:"replay_in_progress"`
	// SketchEngine is the containment index's sketch engine ("minhash" or
	// "kmv"), present once the lake is attached — for a recovered lake it is
	// whatever the snapshot recorded, not what any flag said.
	SketchEngine string `json:"sketch_engine,omitempty"`
	// RequestedSketchEngine echoes Config.RequestedSketchEngine (the
	// operator's -sketch choice), when one was expressed.
	RequestedSketchEngine string `json:"requested_sketch_engine,omitempty"`
	// SketchEngineMismatch is true when the attached lake's engine differs
	// from the requested one — on a warm restart the snapshot's recorded
	// engine overrides the flag, and this field is how an operator detects
	// that the flag did not take effect.
	SketchEngineMismatch bool            `json:"sketch_engine_mismatch,omitempty"`
	Persistence          *persist.Status `json:"persistence,omitempty"`
	// Shards is present in cluster mode: one entry per remote shard process
	// with its own health status ("down" when unreachable). Any shard not
	// "ok" degrades the coordinator's overall Status — the coordinator
	// process is healthy, the catalog behind it is not whole.
	Shards []ShardHealth `json:"shards,omitempty"`
	// Load aggregates the per-endpoint serving counters (see /metrics): one
	// glance says whether the server is saturated or shedding.
	Load LoadSummary `json:"load"`
}

// healthz reports liveness plus the durability state: during a warm
// restart it answers 200 with status "warming" (the process is healthy,
// the lake is not ready), and once attached to a persisted lake it carries
// the store's snapshot/WAL counters and last-fsync time.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	switch {
	case s.p() == nil:
		resp.Status = "warming"
		resp.ReplayInProgress = true
	case s.closing.Load():
		resp.Status = "stopping"
	}
	if p := s.p(); p != nil {
		resp.SketchEngine = string(p.Lake().SketchEngine())
		if req := s.cfg.RequestedSketchEngine; req != "" {
			resp.RequestedSketchEngine = req
			resp.SketchEngineMismatch = resp.SketchEngine != req
		}
		if rep, ok := p.Lake().(ShardHealthReporter); ok {
			resp.Shards = rep.ShardHealth(r.Context())
			if resp.Status == "ok" {
				for _, sh := range resp.Shards {
					if sh.Status != "ok" {
						resp.Status = "degraded"
						break
					}
				}
			}
		}
	}
	if st := s.store.Load(); st != nil {
		status := st.Status()
		resp.Persistence = &status
		if status.ReadOnly && resp.Status == "ok" {
			// Still live for reads, but mutations are being refused with
			// 503: the store hit a write failure and degraded to read-only.
			resp.Status = "degraded"
		}
	}
	resp.Load = s.loadSummary()
	writeJSON(w, http.StatusOK, resp)
}

// Handler returns the server's routes; mount it on any http.Server (tests
// use httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves until ctx is cancelled, then shuts down: the
// listener closes, every in-flight request's context is cancelled — the
// pipeline stages abort at their next checkpoint and those clients receive
// a structured 503 — and the handlers get shutdownGrace to unwind. Because
// requests are cancellable mid-stage, shutdown is prompt even when requests
// with long deadlines are in flight; nil is returned on a clean stop.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over a caller-provided listener — the shape the
// cluster harness and shard helper processes need to bind :0 and report
// the actual port before traffic arrives. It owns ln and closes it on
// return; the shutdown ordering is documented on ListenAndServe.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts descend from baseCtx, not context.Background():
	// http.Server.Shutdown alone never cancels in-flight requests, which
	// would leave shutdown waiting on whatever per-request deadlines remain.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Shutdown ordering matters for durability: first refuse new
		// mutations (503), then drain the in-flight ones and sync + close
		// the WAL — all while the listener still answers queries — and only
		// then close the listener and unwind the remaining handlers. A
		// SIGTERM therefore never races an acknowledged mutation out of the
		// log, and a mutation that got its 200 is on disk before the
		// process exits.
		s.closing.Store(true)
		s.mutGate.Lock() // drains: mutations hold this shared while applying
		var flushErr error
		if st := s.store.Load(); st != nil {
			flushErr = st.Close()
		}
		s.mutGate.Unlock()
		shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		cancelBase()
		return errors.Join(flushErr, srv.Shutdown(shutCtx))
	}
}

const shutdownGrace = 15 * time.Second

// errorBody is the structured error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	// Marshal before touching the response: encoding can fail after the
	// fact (a lake cell parsed as ±Inf has no JSON representation), and a
	// failure discovered after WriteHeader would turn into a silent 200
	// with a truncated body. This way it becomes an honest 500.
	buf := &bytes.Buffer{}
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(body); err != nil {
		if status == http.StatusInternalServerError {
			// The error envelope itself failed to encode; nothing left to say.
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("response not representable as JSON: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Status: status})
}

// statusFor maps handler errors to HTTP statuses: an expired per-request
// deadline is a gateway timeout, a client cancellation is reported (even if
// rarely read) as service unavailable, an oversized body is 413, a
// contained discoverer panic (a server-side fault, not the caller's) is
// 500, and everything else — validation, unknown names, malformed tables —
// is the caller's error.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	var sh *shedError
	var coded interface{ HTTPStatus() int }
	switch {
	case errors.As(err, &coded):
		// Typed errors carry their own status: serve's statusError (e.g.
		// 404 for a missing table) and the cluster package's shard errors,
		// which map a shard's 429/503/504 onto the coordinator response.
		// Checked first: a shard-side timeout surfaces as the shard error's
		// status even when it wraps a context deadline.
		return coded.HTTPStatus()
	case errors.As(err, &sh):
		return http.StatusTooManyRequests
	case errors.Is(err, persist.ErrReadOnly):
		// The store degraded to read-only (disk full / write failure):
		// writes are refused until an operator intervenes, but this is a
		// server-side condition, not the caller's error.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errShuttingDown):
		return http.StatusServiceUnavailable
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case strings.Contains(err.Error(), "panicked:"):
		// discovery.RunAll contains user-hook panics and surfaces them as
		// errors of this shape; the hook registry has no typed error, so
		// the message is the contract.
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Retry-After values for the two non-overload refusals. Warming is short:
// replay finishes on its own schedule and clients should re-probe quickly.
// Read-only degradation is sticky until an operator restarts the process,
// so hammering sooner buys nothing.
const (
	warmingRetryAfter  = "1"
	readOnlyRetryAfter = "30"
)

// handle wraps an endpoint with the per-request scope: readiness gate,
// admission control, metering, body limit, timeout context, JSON rendering
// and structured errors. Counter discipline: every arrival is exactly one
// of admitted or shed; every admitted request lands exactly once in the
// latency histogram and exactly one of completed or errors.
func (s *Server) handle(m *endpointMetrics, class endpointClass, fn func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.p() == nil {
			m.shed.Add(1)
			w.Header().Set("Retry-After", warmingRetryAfter)
			writeError(w, http.StatusServiceUnavailable, "lake recovery in progress; retry shortly")
			return
		}
		arrival := time.Now()
		ctx := r.Context()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		if err := s.admit[class].admit(ctx, &m.queued); err != nil {
			// Not served at all — a shed, whatever the error's shape (a
			// context that died in the queue sheds too, it just reports the
			// honest 504/503 instead of 429).
			m.shed.Add(1)
			var sh *shedError
			if errors.As(err, &sh) {
				w.Header().Set("Retry-After", retryAfterSeconds(sh.retryAfter))
			}
			writeError(w, statusFor(err), err.Error())
			return
		}
		m.admitted.Add(1)
		m.inflight.Add(1)
		start := time.Now()
		defer func() {
			s.admit[class].release(start)
			m.inflight.Add(-1)
			m.lat.observe(time.Since(arrival)) // queue wait included: it is what the client felt
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		out, err := fn(ctx, r)
		if err != nil {
			m.errored.Add(1)
			var hinted interface{ RetryAfterHint() string }
			switch {
			case errors.Is(err, persist.ErrReadOnly):
				w.Header().Set("Retry-After", readOnlyRetryAfter)
			case errors.As(err, &hinted):
				// Typed errors (cluster shard refusals) carry their own
				// retry hint — a dead shard's 503 passes the hint through
				// so clients back off like they would against the shard.
				if h := hinted.RetryAfterHint(); h != "" {
					w.Header().Set("Retry-After", h)
				}
			}
			writeError(w, statusFor(err), err.Error())
			return
		}
		m.completed.Add(1)
		writeJSON(w, http.StatusOK, out)
	}
}

// decodeBody strictly decodes the request body: unknown fields and trailing
// garbage are rejected, and numbers keep full precision (json.Number).
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("malformed request body: trailing data after JSON object")
	}
	return nil
}

// DiscoverRequest is the wire form of the discovery stage input.
type DiscoverRequest struct {
	Query       TableJSON `json:"query"`
	QueryColumn int       `json:"queryColumn"`
	Methods     []string  `json:"methods,omitempty"`
	K           int       `json:"k,omitempty"`
}

// DiscoverResult is one ranked discovery answer.
type DiscoverResult struct {
	Table  string  `json:"table"`
	Score  float64 `json:"score"`
	Method string  `json:"method"`
	Column int     `json:"column"`
}

// ShardErrorJSON is the wire form of one unreachable shard in a partial
// discovery response.
type ShardErrorJSON struct {
	Shard int    `json:"shard"`
	Error string `json:"error"`
}

// DiscoverResponse is the wire form of the discovery stage output. The
// integration set is reported by name (the query first); full tables are
// available through /v1/integrate. Partial is the cluster-mode degradation
// marker: when set, some shards were unreachable during the fan-out and
// the rankings cover the reachable shards only, with per-shard detail in
// ShardErrors. A non-partial response always covers the whole catalog.
type DiscoverResponse struct {
	PerMethod      map[string][]DiscoverResult `json:"perMethod"`
	IntegrationSet []string                    `json:"integrationSet"`
	Partial        bool                        `json:"partial,omitempty"`
	ShardErrors    []ShardErrorJSON            `json:"shardErrors,omitempty"`
}

func (s *Server) discover(ctx context.Context, r *http.Request) (any, error) {
	var req DiscoverRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := req.Query.DecodeTable()
	if err != nil {
		return nil, err
	}
	resp, err := s.p().Discover(ctx, core.DiscoverRequest{Query: q, QueryColumn: req.QueryColumn, Methods: req.Methods, K: req.K})
	if err != nil {
		return nil, err
	}
	return encodeDiscoverResponse(resp), nil
}

func encodeDiscoverResponse(resp *core.DiscoverResponse) DiscoverResponse {
	out := DiscoverResponse{PerMethod: make(map[string][]DiscoverResult, len(resp.PerMethod))}
	for m, rs := range resp.PerMethod {
		list := make([]DiscoverResult, 0, len(rs))
		for _, res := range rs {
			list = append(list, DiscoverResult{Table: res.Table.Name, Score: res.Score, Method: res.Method, Column: res.Column})
		}
		out.PerMethod[m] = list
	}
	for _, t := range resp.IntegrationSet {
		out.IntegrationSet = append(out.IntegrationSet, t.Name)
	}
	if resp.Partial() {
		out.Partial = true
		out.ShardErrors = make([]ShardErrorJSON, 0, len(resp.ShardErrors))
		for _, se := range resp.ShardErrors {
			out.ShardErrors = append(out.ShardErrors, ShardErrorJSON{Shard: se.Shard, Error: se.Err.Error()})
		}
	}
	return out
}

// IntegrateRequest names lake tables and/or carries inline tables to
// integrate, in order: named lake tables first, then inline ones.
type IntegrateRequest struct {
	Names          []string    `json:"names,omitempty"`
	Tables         []TableJSON `json:"tables,omitempty"`
	Operator       string      `json:"operator,omitempty"`
	WithProvenance bool        `json:"withProvenance,omitempty"`
}

// IntegrateResponse carries the integrated table.
type IntegrateResponse struct {
	Table    TableJSON `json:"table"`
	Operator string    `json:"operator"`
}

// integrationSet resolves an IntegrateRequest's table list.
func (s *Server) integrationSet(req IntegrateRequest) ([]*table.Table, error) {
	set := make([]*table.Table, 0, len(req.Names)+len(req.Tables))
	for _, name := range req.Names {
		t, ok := s.p().Lake().Get(name)
		if !ok {
			return nil, fmt.Errorf("no table %q in lake", name)
		}
		set = append(set, t)
	}
	for _, tj := range req.Tables {
		t, err := tj.DecodeTable()
		if err != nil {
			return nil, err
		}
		set = append(set, t)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("empty integration set: provide names and/or tables")
	}
	return set, nil
}

func (s *Server) integrate(ctx context.Context, r *http.Request) (any, error) {
	var req IntegrateRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	set, err := s.integrationSet(req)
	if err != nil {
		return nil, err
	}
	resp, err := s.p().Integrate(ctx, core.IntegrateRequest{Tables: set, Operator: req.Operator, WithProvenance: req.WithProvenance})
	if err != nil {
		return nil, err
	}
	return IntegrateResponse{Table: EncodeTable(resp.Table), Operator: resp.Operator}, nil
}

// PipelineRequest runs discover-then-integrate end to end.
type PipelineRequest struct {
	Query          TableJSON `json:"query"`
	QueryColumn    int       `json:"queryColumn"`
	Methods        []string  `json:"methods,omitempty"`
	K              int       `json:"k,omitempty"`
	Operator       string    `json:"operator,omitempty"`
	WithProvenance bool      `json:"withProvenance,omitempty"`
}

// PipelineResponse bundles both stage outputs.
type PipelineResponse struct {
	Discovery   DiscoverResponse  `json:"discovery"`
	Integration IntegrateResponse `json:"integration"`
}

func (s *Server) pipeline(ctx context.Context, r *http.Request) (any, error) {
	var req PipelineRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	q, err := req.Query.DecodeTable()
	if err != nil {
		return nil, err
	}
	res, err := s.p().Run(ctx, core.RunRequest{
		Query:          q,
		QueryColumn:    req.QueryColumn,
		Methods:        req.Methods,
		K:              req.K,
		Operator:       req.Operator,
		WithProvenance: req.WithProvenance,
	})
	if err != nil {
		return nil, err
	}
	return PipelineResponse{
		Discovery:   encodeDiscoverResponse(res.Discovery),
		Integration: IntegrateResponse{Table: EncodeTable(res.Integration.Table), Operator: res.Integration.Operator},
	}, nil
}

// CorrelateRequest asks for a Pearson correlation between two columns (by
// header name) of an inline table — typically an integration result.
type CorrelateRequest struct {
	Table TableJSON `json:"table"`
	ColA  string    `json:"colA"`
	ColB  string    `json:"colB"`
}

// CorrelateResponse carries the coefficient and the pair count it was
// computed over.
type CorrelateResponse struct {
	R float64 `json:"r"`
	N int     `json:"n"`
}

func (s *Server) correlate(ctx context.Context, r *http.Request) (any, error) {
	var req CorrelateRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	t, err := req.Table.DecodeTable()
	if err != nil {
		return nil, err
	}
	rho, n, err := s.p().Correlate(ctx, t, req.ColA, req.ColB)
	if err != nil {
		return nil, err
	}
	return CorrelateResponse{R: rho, N: n}, nil
}

// ResolveRequest asks for entity resolution over an inline table with the
// pipeline's knowledge base (request-scoped annotation cache).
type ResolveRequest struct {
	Table     TableJSON `json:"table"`
	Threshold float64   `json:"threshold,omitempty"`
	Veto      float64   `json:"veto,omitempty"`
}

// ResolveResponse reports the clusters (row indices of the input), the
// merged canonical table, and how many candidate pairs were compared.
type ResolveResponse struct {
	Clusters [][]int   `json:"clusters"`
	Resolved TableJSON `json:"resolved"`
	Pairs    int       `json:"pairs"`
}

func (s *Server) resolve(ctx context.Context, r *http.Request) (any, error) {
	var req ResolveRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	t, err := req.Table.DecodeTable()
	if err != nil {
		return nil, err
	}
	res, err := s.p().ResolveEntities(ctx, t, er.Options{Threshold: req.Threshold, Veto: req.Veto})
	if err != nil {
		return nil, err
	}
	return ResolveResponse{Clusters: res.Clusters, Resolved: EncodeTable(res.Resolved), Pairs: len(res.Pairs)}, nil
}

// LakeAddRequest carries tables to index incrementally.
type LakeAddRequest struct {
	Tables []TableJSON `json:"tables"`
}

// LakeRemoveRequest names tables to drop.
type LakeRemoveRequest struct {
	Names []string `json:"names"`
}

// LakeResponse reports the lake's shape after a query or mutation.
type LakeResponse struct {
	Size   int      `json:"size"`
	Tables []string `json:"tables,omitempty"`
}

// errShuttingDown refuses mutations that arrive after shutdown began: the
// WAL is being (or has been) flushed and closed, so acknowledging more
// writes would break the durability contract.
var errShuttingDown = errors.New("server shutting down; lake mutations refused")

// mutate runs one lake mutation under the shutdown drain gate, routing it
// through the durable store when one is attached (logged + fsynced before
// acknowledgement) and straight to the pipeline otherwise.
func (s *Server) mutate(direct func() error, durable func(*persist.Store) error) error {
	if s.closing.Load() {
		return errShuttingDown
	}
	s.mutGate.RLock()
	defer s.mutGate.RUnlock()
	if s.closing.Load() {
		// Shutdown began while this request waited for the gate; the WAL
		// flush may already be underway, so refuse rather than append.
		return errShuttingDown
	}
	if st := s.store.Load(); st != nil {
		return durable(st)
	}
	return direct()
}

// Lake mutations are transactional, not cancellable: once Lake.Add/Remove
// starts, it runs to completion (aborting a half-applied index delta would
// be worse than finishing it), so the per-request timeout bounds only the
// wait to start — the deadline is checked after decoding, and an already-
// expired request mutates nothing. The worst case is a KB-stale Add, which
// re-annotates the SANTOS layer in full while holding the lake write lock;
// trigger RefreshKB out of band after KB mutations to keep adds cheap.
func (s *Server) lakeAdd(ctx context.Context, r *http.Request) (any, error) {
	var req LakeAddRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Tables) == 0 {
		return nil, fmt.Errorf("no tables to add")
	}
	tables := make([]*table.Table, 0, len(req.Tables))
	for _, tj := range req.Tables {
		t, err := tj.DecodeTable()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	err := s.mutate(
		func() error { return s.p().AddTables(tables...) },
		func(st *persist.Store) error { return st.Add(tables...) },
	)
	if err != nil {
		return nil, err
	}
	return LakeResponse{Size: s.p().Lake().Size()}, nil
}

// lakeRemove follows lakeAdd's transactional (run-to-completion) contract.
func (s *Server) lakeRemove(ctx context.Context, r *http.Request) (any, error) {
	var req LakeRemoveRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Names) == 0 {
		return nil, fmt.Errorf("no tables to remove")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	err := s.mutate(
		func() error { return s.p().RemoveTables(req.Names...) },
		func(st *persist.Store) error { return st.Remove(req.Names...) },
	)
	if err != nil {
		return nil, err
	}
	return LakeResponse{Size: s.p().Lake().Size()}, nil
}

func (s *Server) lakeInfo(ctx context.Context, r *http.Request) (any, error) {
	if nl, ok := s.p().Lake().(NameLister); ok {
		// Cluster-mode catalogs enumerate names over the wire instead of
		// materializing every remote table.
		names, err := nl.TableNames(ctx)
		if err != nil {
			return nil, err
		}
		return LakeResponse{Size: len(names), Tables: names}, nil
	}
	tables := s.p().Lake().Tables()
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		names = append(names, t.Name)
	}
	return LakeResponse{Size: len(names), Tables: names}, nil
}
