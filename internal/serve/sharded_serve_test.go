package serve

// Sharded serving integration: `dialite serve -shards N` hands the server
// a core pipeline over a lake.Sharded, and every endpoint must behave
// exactly as it does over a single lake — same discovery answers, same
// catalog views, same mutation semantics. The serving layer never
// branches on the catalog's concrete type; this test pins that.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/lake"
	"repro/internal/paperdata"
	"repro/internal/table"
)

func newShardedTestServer(t *testing.T, shards int) (*Server, *httptest.Server) {
	t.Helper()
	p, err := core.New(paperdata.CovidLake(), core.Config{Knowledge: kb.Demo(), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestShardedServing(t *testing.T) {
	sharded, shardedTS := newShardedTestServer(t, 3)
	_, plainTS := newTestServer(t, Config{})
	if _, ok := sharded.p().Lake().(*lake.Sharded); !ok {
		t.Fatalf("sharded pipeline holds %T, want *lake.Sharded", sharded.p().Lake())
	}

	// Discovery answers byte-identically to the unsharded server.
	discover := func(url string) DiscoverResponse {
		t.Helper()
		resp := postJSON(t, url+"/v1/discover", DiscoverRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("discover status = %d", resp.StatusCode)
		}
		return decodeResp[DiscoverResponse](t, resp)
	}
	got, want := discover(shardedTS.URL), discover(plainTS.URL)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded discover diverged from unsharded\n got: %+v\nwant: %+v", got, want)
	}

	// Mutations route through the composite: add, duplicate-reject, list,
	// remove — same wire behavior as the single lake.
	extra := table.New("T9", "City", "Cases")
	extra.MustAddRow(table.StringValue("Berlin"), table.IntValue(10))
	resp := postJSON(t, shardedTS.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	if out := decodeResp[LakeResponse](t, resp); out.Size != 3 {
		t.Errorf("size after add = %d, want 3", out.Size)
	}
	resp = postJSON(t, shardedTS.URL+"/v1/lake/add", LakeAddRequest{Tables: []TableJSON{EncodeTable(extra)}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate add status = %d, want 400", resp.StatusCode)
	}
	if e := decodeResp[errorBody](t, resp); !strings.Contains(e.Error, "duplicate") {
		t.Errorf("duplicate add error = %q", e.Error)
	}
	resp = postJSON(t, shardedTS.URL+"/v1/lake/remove", LakeRemoveRequest{Names: []string{"T9"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove status = %d", resp.StatusCode)
	}
	getResp, err := http.Get(shardedTS.URL + "/v1/lake")
	if err != nil {
		t.Fatal(err)
	}
	if out := decodeResp[LakeResponse](t, getResp); out.Size != 2 || strings.Join(out.Tables, ",") != "T2,T3" {
		t.Errorf("lake info after churn = %+v", out)
	}

	// /healthz surfaces the composite's engine like any lake's.
	hResp, err := http.Get(shardedTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeResp[HealthResponse](t, hResp)
	if h.Status != "ok" || h.SketchEngine != "minhash" {
		t.Errorf("healthz = %+v", h)
	}

	// Full pipeline run (discover → integrate → analyze) over the sharded
	// catalog reproduces the paper flow.
	resp = postJSON(t, shardedTS.URL+"/v1/pipeline", PipelineRequest{Query: EncodeTable(paperdata.T1()), QueryColumn: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline status = %d", resp.StatusCode)
	}
	if out := decodeResp[PipelineResponse](t, resp); len(out.Integration.Table.Rows) != 7 {
		t.Errorf("sharded pipeline integrated rows = %d, want 7 (Fig. 3)", len(out.Integration.Table.Rows))
	}
}
