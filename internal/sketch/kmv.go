package sketch

import (
	"fmt"
	"slices"
	"sync"
)

// kmvBuilder implements KMV (k-minimum-values) bottom-k sketches: the sketch
// of a set is the Size smallest distinct remixed fingerprints, sorted
// ascending. Signing is one multiply per member plus a sort — no
// per-permutation pass — which is what makes KMV the fast-signing engine.
// The price is query-time candidate generation: KMV sketches are not
// coordinate-aligned, so they cannot be banded; the ensemble scans them
// linearly (see lshensemble.query).
type kmvBuilder struct {
	size     int
	mul, xor uint64
	// scratch pools the remix-and-sort buffer so signing large domains does
	// not allocate per call on the query path.
	scratch sync.Pool
}

func newKMVBuilder(size int, seed int64) *kmvBuilder {
	b := &kmvBuilder{size: size}
	b.mul, b.xor = seededMixer(seed)
	b.scratch.New = func() any {
		s := make([]uint64, 0, 4*size)
		return &s
	}
	return b
}

func (b *kmvBuilder) Engine() Engine { return KMV }
func (b *kmvBuilder) Size() int      { return b.size }

// remix maps a fingerprint through the seeded bijection (xor then odd
// multiply), so the "k smallest" order is seed-dependent and uncorrelated
// with the raw FNV values, exactly as a MinHash family's order is.
func (b *kmvBuilder) remix(fp uint64) uint64 { return (fp ^ b.xor) * b.mul }

func (b *kmvBuilder) SignInto(fps []uint64, dst Sketch) Sketch {
	if cap(dst) < b.size {
		dst = make(Sketch, 0, b.size)
	}
	dst = dst[:0]
	if len(fps) == 0 {
		return dst
	}
	bufp := b.scratch.Get().(*[]uint64)
	buf := (*bufp)[:0]
	for _, fp := range fps {
		buf = append(buf, b.remix(fp))
	}
	slices.Sort(buf)
	// Bottom-k distinct: sorted dedupe, truncated at capacity. The result
	// depends only on the distinct multiset, so duplicates and input order
	// are irrelevant by construction.
	var prev uint64
	for i, v := range buf {
		if i > 0 && v == prev {
			continue
		}
		dst = append(dst, v)
		prev = v
		if len(dst) == b.size {
			break
		}
	}
	*bufp = buf
	b.scratch.Put(bufp)
	return dst
}

// Containment estimates |Q∩X|/|Q|. The merge walks the two sorted sketches
// over the value range both observed: an unsaturated sketch (fewer than Size
// values) is its set's complete remixed image and observes everything, a
// saturated one observes only values up to its largest. Within that range
// membership tests are exact, so matches/union is the KMV Jaccard estimate;
// the exact set sizes then give I = J(q+x)/(1+J) and containment I/q. When
// both sketches are unsaturated the same walk degenerates to the exact
// intersection count and the estimate is exact.
func (b *kmvBuilder) Containment(q, x Sketch, qSize, xSize int) float64 {
	if qSize <= 0 || len(q) == 0 || len(x) == 0 {
		return 0
	}
	tau := ^uint64(0)
	if len(q) == b.size && q[len(q)-1] < tau {
		tau = q[len(q)-1]
	}
	if len(x) == b.size && x[len(x)-1] < tau {
		tau = x[len(x)-1]
	}
	matches, union := 0, 0
	i, j := 0, 0
	for i < len(q) || j < len(x) {
		var v uint64
		both := false
		switch {
		case j >= len(x) || (i < len(q) && q[i] < x[j]):
			v = q[i]
			i++
		case i >= len(q) || x[j] < q[i]:
			v = x[j]
			j++
		default:
			v = q[i]
			both = true
			i++
			j++
		}
		if v > tau {
			break
		}
		union++
		if both {
			matches++
		}
	}
	if union == 0 {
		return 0
	}
	if len(q) < b.size && len(x) < b.size {
		return clamp01(float64(matches) / float64(qSize))
	}
	jac := float64(matches) / float64(union)
	inter := jac * float64(qSize+xSize) / (1 + jac)
	return clamp01(inter / float64(qSize))
}

// Merge is a sorted-dedupe merge truncated at capacity. Because every value
// of bottom-k(A ∪ B) is among the k smallest of the set that contains it —
// and therefore present in that set's sketch — the merge of two sketches
// equals the sketch of the union exactly.
func (b *kmvBuilder) Merge(a, x Sketch, dst Sketch) Sketch {
	if cap(dst) < b.size {
		dst = make(Sketch, 0, b.size)
	}
	dst = dst[:0]
	i, j := 0, 0
	for len(dst) < b.size && (i < len(a) || j < len(x)) {
		switch {
		case j >= len(x) || (i < len(a) && a[i] < x[j]):
			dst = append(dst, a[i])
			i++
		case i >= len(a) || x[j] < a[i]:
			dst = append(dst, x[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

func (b *kmvBuilder) Validate(s Sketch) error {
	if len(s) > b.size {
		return fmt.Errorf("sketch: kmv sketch has %d words, capacity is %d", len(s), b.size)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return fmt.Errorf("sketch: kmv sketch not strictly ascending at word %d", i)
		}
	}
	return nil
}
