// Package sketch abstracts the per-domain set summaries behind the LSH
// Ensemble containment index: a Sketch is the signed summary of one value
// set's fingerprints, and a Builder is one engine for producing sketches and
// estimating containment between them. Two engines exist — MinHash
// signatures (the default: coordinate-aligned minima over a permutation
// family, bandable for sub-linear LSH probing) and KMV bottom-k sketches
// (the k smallest remixed fingerprints, cheaper to sign by an order of
// magnitude but scanned linearly at query time). The LSH Ensemble line of
// work trades these off explicitly; the accuracy harness in
// internal/lshensemble keeps the trade measured rather than assumed.
//
// Both sketch forms are flat []uint64, so the persistence layer stores them
// with one codec and the engine name recorded beside them (see
// PERSISTENCE.md, domains section).
package sketch

import (
	"fmt"
	"math/rand"

	"repro/internal/minhash"
)

// Engine names a sketch implementation. The name is recorded in snapshots;
// renaming an engine is a format change.
type Engine string

const (
	// MinHash is the coordinate-aligned signature engine (bandable, the
	// LSH Ensemble default).
	MinHash Engine = "minhash"
	// KMV is the bottom-k distinct-minimum-values engine (fast signing,
	// linear-scan candidate generation).
	KMV Engine = "kmv"
)

// Known reports whether this build implements the engine (the empty string
// counts: it defaults to MinHash everywhere options are normalized).
func Known(e Engine) bool {
	switch e {
	case "", MinHash, KMV:
		return true
	}
	return false
}

// Params configures a Builder.
type Params struct {
	// Engine selects the implementation. Empty means MinHash.
	Engine Engine
	// Size is the sketch capacity: the MinHash signature length or the KMV
	// bottom-k bound. Must be positive.
	Size int
	// Seed makes sketches deterministic per (engine, size, seed).
	Seed int64
}

// Sketch is one set's signed summary: a MinHash signature (exactly Size
// words, position i holding the i-th permutation's minimum) or a KMV sketch
// (at most Size words, the strictly ascending smallest distinct remixed
// fingerprints). Sketches are only comparable under the Builder that
// produced them.
type Sketch []uint64

// Builder signs fingerprint multisets into sketches and estimates
// containment between them. Implementations are safe for concurrent use.
type Builder interface {
	// Engine returns the implementation's name.
	Engine() Engine
	// Size returns the sketch capacity.
	Size() int
	// SignInto computes the sketch of a fingerprint multiset, writing into
	// dst when it has capacity (previous contents discarded). Duplicate
	// fingerprints are harmless: the sketch of a multiset equals the sketch
	// of its distinct set.
	SignInto(fps []uint64, dst Sketch) Sketch
	// Containment estimates |Q∩X|/|Q| in [0,1] from the two sets' sketches
	// and their exact cardinalities (which the lake always knows — domains
	// store their deduplicated value sets).
	Containment(q, x Sketch, qSize, xSize int) float64
	// Merge combines two sketches of sets into the sketch of their union,
	// writing into dst when it has capacity. For both engines
	// Merge(Sign(A), Sign(B)) equals Sign(A ∪ B) exactly.
	Merge(a, b Sketch, dst Sketch) Sketch
	// Validate checks that a restored sketch is structurally valid for this
	// engine — the refuse-don't-guess gate the persistence layer runs on
	// every persisted sketch before trusting it.
	Validate(s Sketch) error
}

// New constructs the builder for p. Unknown engines and non-positive sizes
// are errors, never guessed at.
func New(p Params) (Builder, error) {
	if p.Size <= 0 {
		return nil, fmt.Errorf("sketch: size must be positive, got %d", p.Size)
	}
	switch p.Engine {
	case "", MinHash:
		return &minhashBuilder{family: minhash.NewFamily(p.Size, p.Seed), size: p.Size}, nil
	case KMV:
		return newKMVBuilder(p.Size, p.Seed), nil
	default:
		return nil, fmt.Errorf("sketch: unknown engine %q (this build implements %q and %q)", p.Engine, MinHash, KMV)
	}
}

// minhashBuilder adapts minhash.Family to the Builder interface.
type minhashBuilder struct {
	family *minhash.Family
	size   int
}

func (b *minhashBuilder) Engine() Engine { return MinHash }
func (b *minhashBuilder) Size() int      { return b.size }

func (b *minhashBuilder) SignInto(fps []uint64, dst Sketch) Sketch {
	return Sketch(b.family.SignFingerprintsInto(fps, minhash.Signature(dst)))
}

// Containment converts the signature-agreement Jaccard estimate into a
// containment estimate using the exact set sizes: from J = I/(q+x-I),
// I = J(q+x)/(1+J), and containment = I/q, clamped to [0,1].
func (b *minhashBuilder) Containment(q, x Sketch, qSize, xSize int) float64 {
	if qSize <= 0 {
		return 0
	}
	j := minhash.EstimateJaccard(minhash.Signature(q), minhash.Signature(x))
	inter := j * float64(qSize+xSize) / (1 + j)
	return clamp01(inter / float64(qSize))
}

// Merge is the coordinate-wise minimum: exactly the signature of the union
// of the two signed sets. Both sketches must come from this builder.
func (b *minhashBuilder) Merge(a, x Sketch, dst Sketch) Sketch {
	if len(a) != b.size || len(x) != b.size {
		panic(fmt.Sprintf("sketch: minhash merge of %d- and %d-word sketches under size %d", len(a), len(x), b.size))
	}
	if cap(dst) < b.size {
		dst = make(Sketch, b.size)
	}
	dst = dst[:b.size]
	for i := range dst {
		if a[i] < x[i] {
			dst[i] = a[i]
		} else {
			dst[i] = x[i]
		}
	}
	return dst
}

func (b *minhashBuilder) Validate(s Sketch) error {
	if len(s) != b.size {
		return fmt.Errorf("sketch: minhash sketch has %d words, want %d", len(s), b.size)
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// seededMixer derives the KMV remix constants from a seed: a random odd
// multiplier (a bijection over 2^64) and a pre-xor, so sketches from
// different seeds are uncorrelated just as MinHash families are.
func seededMixer(seed int64) (mul, xor uint64) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Uint64() | 1, rng.Uint64()
}
