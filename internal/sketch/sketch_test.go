package sketch

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/minhash"
)

func mustBuilder(t *testing.T, p Params) Builder {
	t.Helper()
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fpsOf(n, offset int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = minhash.Fingerprint(fmt.Sprintf("member-%d", i+offset))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Engine: "hll", Size: 64}); err == nil {
		t.Error("unknown engine must be rejected")
	}
	if _, err := New(Params{Engine: KMV, Size: 0}); err == nil {
		t.Error("non-positive size must be rejected")
	}
	b := mustBuilder(t, Params{Size: 32, Seed: 1})
	if b.Engine() != MinHash {
		t.Errorf("empty engine resolved to %q, want minhash", b.Engine())
	}
	if !Known("") || !Known(MinHash) || !Known(KMV) || Known("hll") {
		t.Error("Known misclassifies an engine")
	}
}

// TestMinHashBuilderMatchesFamily pins the adapter to the minhash package:
// same size, same seed, bit-identical sketches.
func TestMinHashBuilderMatchesFamily(t *testing.T) {
	b := mustBuilder(t, Params{Engine: MinHash, Size: 96, Seed: 7})
	fam := minhash.NewFamily(96, 7)
	fps := fpsOf(150, 3)
	got := b.SignInto(fps, nil)
	want := fam.SignFingerprints(fps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component %d: builder %d != family %d", i, got[i], want[i])
		}
	}
	if err := b.Validate(got); err != nil {
		t.Errorf("own sketch invalid: %v", err)
	}
	if err := b.Validate(got[:10]); err == nil {
		t.Error("short minhash sketch must be invalid")
	}
}

// TestKMVDuplicateInsensitive: the sketch of a multiset equals the sketch of
// its distinct set, and input order is irrelevant.
func TestKMVDuplicateInsensitive(t *testing.T) {
	b := mustBuilder(t, Params{Engine: KMV, Size: 16, Seed: 5})
	base := fpsOf(60, 0)
	dup := append(append([]uint64(nil), base...), base...) // every member twice
	rng := rand.New(rand.NewSource(2))
	rng.Shuffle(len(dup), func(i, j int) { dup[i], dup[j] = dup[j], dup[i] })
	a, c := b.SignInto(base, nil), b.SignInto(dup, nil)
	if len(a) != len(c) {
		t.Fatalf("sketch lengths differ: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("word %d differs under duplication/shuffle", i)
		}
	}
	if err := b.Validate(a); err != nil {
		t.Errorf("own sketch invalid: %v", err)
	}
}

// TestKMVContainmentRange: estimates stay in [0,1] across random set pairs
// of wildly different sizes, including saturated and unsaturated sketches.
func TestKMVContainmentRange(t *testing.T) {
	for _, eng := range []Engine{MinHash, KMV} {
		b := mustBuilder(t, Params{Engine: eng, Size: 32, Seed: 11})
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 200; trial++ {
			qn, xn := 1+rng.Intn(200), 1+rng.Intn(200)
			off := rng.Intn(100)
			q := b.SignInto(fpsOf(qn, 0), nil)
			x := b.SignInto(fpsOf(xn, off), nil)
			c := b.Containment(q, x, qn, xn)
			if c < 0 || c > 1 {
				t.Fatalf("%s: containment %v out of range (|Q|=%d |X|=%d off=%d)", eng, c, qn, xn, off)
			}
		}
		if c := b.Containment(nil, nil, 10, 10); c != 0 {
			t.Errorf("%s: empty sketches estimate %v, want 0", eng, c)
		}
	}
}

// TestKMVContainmentExactWhenUnsaturated: below the bottom-k capacity a KMV
// sketch is the complete remixed set, so the estimate is the exact
// containment — and therefore exactly monotone in the true intersection.
func TestKMVContainmentExactWhenUnsaturated(t *testing.T) {
	b := mustBuilder(t, Params{Engine: KMV, Size: 256, Seed: 3})
	q := fpsOf(40, 0)
	qs := b.SignInto(q, nil)
	for overlap := 0; overlap <= 40; overlap += 5 {
		x := fpsOf(50, 40-overlap) // shares exactly `overlap` members with q
		c := b.Containment(qs, b.SignInto(x, nil), 40, 50)
		want := float64(overlap) / 40
		if c != want {
			t.Fatalf("overlap %d: estimate %v, want exactly %v", overlap, c, want)
		}
	}
}

// TestKMVContainmentMonotone: growing the indexed set by a superset never
// decreases the containment estimate of a fixed query (checked exactly in
// the unsaturated regime, and within estimator noise when saturated).
func TestKMVContainmentMonotone(t *testing.T) {
	b := mustBuilder(t, Params{Engine: KMV, Size: 128, Seed: 9})
	qn := 80
	q := b.SignInto(fpsOf(qn, 0), nil)
	prev := -1.0
	for _, xn := range []int{10, 20, 40, 60, 80} {
		// X = first xn members of Q: containment xn/qn, strictly growing.
		c := b.Containment(q, b.SignInto(fpsOf(xn, 0), nil), qn, xn)
		if c < prev {
			t.Fatalf("|X|=%d: estimate %v dropped below %v", xn, c, prev)
		}
		prev = c
	}
	// Saturated regime: a large superset must estimate within the KMV error
	// bound of the true containment 1 (the error grows with |X|/|Q| — the
	// skew the lshensemble accuracy harness tracks).
	big := b.Containment(q, b.SignInto(fpsOf(300, 0), nil), qn, 300)
	if big < 0.75 {
		t.Errorf("superset containment estimate %v, want near 1", big)
	}
}

// TestMergeIsUnionSketch pins the merge law for both engines:
// Merge(Sign(A), Sign(B)) == Sign(A ∪ B), bit for bit.
func TestMergeIsUnionSketch(t *testing.T) {
	for _, eng := range []Engine{MinHash, KMV} {
		b := mustBuilder(t, Params{Engine: eng, Size: 48, Seed: 21})
		a := fpsOf(120, 0)
		c := fpsOf(90, 70) // overlaps a on [70,120)
		union := append(append([]uint64(nil), a...), c...)
		got := b.Merge(b.SignInto(a, nil), b.SignInto(c, nil), nil)
		want := b.SignInto(union, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: merge length %d, union sketch length %d", eng, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: word %d: merge %d != union %d", eng, i, got[i], want[i])
			}
		}
	}
}

func TestKMVValidate(t *testing.T) {
	b := mustBuilder(t, Params{Engine: KMV, Size: 4, Seed: 1})
	if err := b.Validate(Sketch{}); err != nil {
		t.Errorf("empty kmv sketch must be valid: %v", err)
	}
	if err := b.Validate(Sketch{1, 2, 3, 4, 5}); err == nil {
		t.Error("over-capacity sketch must be invalid")
	}
	if err := b.Validate(Sketch{3, 2}); err == nil {
		t.Error("descending sketch must be invalid")
	}
	if err := b.Validate(Sketch{2, 2}); err == nil {
		t.Error("duplicate values must be invalid")
	}
}
