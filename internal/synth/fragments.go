package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kb"
	"repro/internal/table"
)

// FragmentOptions configures Fragments.
type FragmentOptions struct {
	// Seed drives all randomness. Default 1.
	Seed int64
	// Entities is the number of real-world entities fragmented across the
	// tables. Default 20.
	Entities int
	// AliasRate is the probability a mention uses the alias spelling
	// instead of the canonical one (the J&J-vs-JnJ effect). Default 0.4.
	AliasRate float64
	// NullRate is the probability an agency cell is a missing null (the
	// t12/t14 effect). Default 0.25.
	NullRate float64
}

func (o FragmentOptions) withDefaults() FragmentOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Entities <= 0 {
		o.Entities = 20
	}
	if o.AliasRate == 0 {
		o.AliasRate = 0.4
	}
	if o.NullRate == 0 {
		o.NullRate = 0.25
	}
	return o
}

// FragmentSet scales the paper's Fig. 7 shape to many entities: every
// entity has a name, an approving agency and a country, scattered across
// three tables — TA(Name, Agency), TB(Country, Agency), TC(Name, Country)
// — with alias spellings and missing nulls. FD must reconnect the
// fragments; outer joins lose facts; ER over the FD result outperforms ER
// over the outer-join result (experiments X1 and X6).
type FragmentSet struct {
	// Tables holds TA, TB, TC in order.
	Tables []*table.Table
	// Knowledge contains the alias ground truth (canonical spellings), as
	// a curated KB would in the demo.
	Knowledge *kb.KB
	// EntityOf maps every canonical name and country value to its entity
	// index.
	EntityOf map[string]int
	// Options echoes the (defaulted) generation options.
	Options FragmentOptions
}

// Fragments generates a fragment set.
func Fragments(opts FragmentOptions) *FragmentSet {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	know := kb.New()
	fs := &FragmentSet{
		Knowledge: know,
		EntityOf:  make(map[string]int),
		Options:   opts,
	}
	type entity struct {
		name, nameAlias       string
		country, countryAlias string
		agency                string
	}
	agencies := []string{"FDA", "EMA", "MHRA", "WHO", "TGA"}
	ents := make([]entity, opts.Entities)
	for i := range ents {
		// Names are long and distinctive (no shared template words) so
		// string similarity between DIFFERENT entities stays below the ER
		// conflict veto, exactly as distinct vaccine names do in Fig. 7.
		nameBase := titleCase(syntheticName(rng) + syntheticName(rng))
		countryBase := titleCase(syntheticName(rng) + syntheticName(rng))
		e := entity{
			name:      fmt.Sprintf("%s %d", nameBase, i),
			nameAlias: fmt.Sprintf("%s-%d", strings.ToUpper(nameBase[:3]), i),
			country:   fmt.Sprintf("%sia %d", countryBase, i),
			agency:    agencies[rng.Intn(len(agencies))],
		}
		e.countryAlias = fmt.Sprintf("%s-%d", strings.ToUpper(countryBase[:4]), i)
		ents[i] = e
		know.AddAlias(e.nameAlias, e.name)
		know.AddAlias(e.countryAlias, e.country)
		fs.EntityOf[know.Canonical(e.name)] = i
		fs.EntityOf[know.Canonical(e.country)] = i
	}
	ta := table.New("TA", "Name", "Agency")
	tb := table.New("TB", "Country", "Agency")
	tc := table.New("TC", "Name", "Country")
	spell := func(canonical, alias string) string {
		if rng.Float64() < opts.AliasRate {
			return alias
		}
		return canonical
	}
	agencyCell := func(e entity) table.Value {
		if rng.Float64() < opts.NullRate {
			return table.NullValue()
		}
		return table.StringValue(e.agency)
	}
	for _, e := range ents {
		// Every entity lands in TC (the connector) and in a random subset
		// of TA/TB, mirroring how open data fragments facts.
		tc.MustAddRow(table.StringValue(spell(e.name, e.nameAlias)), table.StringValue(spell(e.country, e.countryAlias)))
		if rng.Float64() < 0.8 {
			ta.MustAddRow(table.StringValue(spell(e.name, e.nameAlias)), agencyCell(e))
		}
		if rng.Float64() < 0.8 {
			tb.MustAddRow(table.StringValue(spell(e.country, e.countryAlias)), agencyCell(e))
		}
	}
	fs.Tables = []*table.Table{ta, tb, tc}
	return fs
}

// LabelRows assigns a ground-truth entity label to each row of an
// integrated table: the entity of the canonicalized Name cell, else of the
// Country cell, else a unique per-row label (unresolvable fragments). The
// columns are located by header.
func (fs *FragmentSet) LabelRows(t *table.Table) []string {
	nameCol, _ := t.ColumnIndex("Name")
	countryCol, hasCountry := t.ColumnIndex("Country")
	labels := make([]string, t.NumRows())
	for r := 0; r < t.NumRows(); r++ {
		labels[r] = fmt.Sprintf("row-%d", r)
		if v := t.Cell(r, nameCol); !v.IsNull() {
			if e, ok := fs.EntityOf[fs.Knowledge.Canonical(v.String())]; ok {
				labels[r] = fmt.Sprintf("e%d", e)
				continue
			}
		}
		if hasCountry {
			if v := t.Cell(r, countryCol); !v.IsNull() {
				if e, ok := fs.EntityOf[fs.Knowledge.Canonical(v.String())]; ok {
					labels[r] = fmt.Sprintf("e%d", e)
				}
			}
		}
	}
	return labels
}

// CompleteTuples counts rows with no nulls at all — the completeness
// metric of experiment X1.
func CompleteTuples(t *table.Table) int {
	n := 0
	for _, row := range t.Rows {
		complete := true
		for _, v := range row {
			if v.IsNull() {
				complete = false
				break
			}
		}
		if complete {
			n++
		}
	}
	return n
}

// initials returns the upper-cased first letters of each word.
func initials(s string) string {
	var b strings.Builder
	for _, w := range strings.Fields(s) {
		b.WriteString(strings.ToUpper(w[:1]))
	}
	return b.String()
}
