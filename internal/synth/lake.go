package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/kb"
	"repro/internal/table"
)

// LakeOptions configures GenerateLake.
type LakeOptions struct {
	// Seed drives all randomness; equal options yield equal lakes.
	Seed int64
	// Families is the number of unionable families. Default 4.
	Families int
	// TablesPerFamily is the number of horizontal partitions per family.
	// Default 4.
	TablesPerFamily int
	// RowsPerTable is the row count of each partition. Default 20.
	RowsPerTable int
	// JoinablePerFamily is the number of joinable companion tables per
	// family (sharing the family's key domain with partial containment).
	// Default 2.
	JoinablePerFamily int
	// NoiseTables is the number of off-topic tables. Default 5.
	NoiseTables int
	// HeaderCorruption is the probability a header is renamed to a synonym
	// or blanked. Default 0 (reliable headers); experiments sweep it.
	HeaderCorruption float64
	// NullRate is the probability any measure cell becomes a missing null.
	// Default 0.05.
	NullRate float64
}

func (o LakeOptions) withDefaults() LakeOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Families <= 0 {
		o.Families = 4
	}
	if o.TablesPerFamily <= 0 {
		o.TablesPerFamily = 4
	}
	if o.RowsPerTable <= 0 {
		o.RowsPerTable = 20
	}
	if o.JoinablePerFamily < 0 {
		o.JoinablePerFamily = 0
	} else if o.JoinablePerFamily == 0 {
		o.JoinablePerFamily = 2
	}
	if o.NoiseTables <= 0 {
		o.NoiseTables = 5
	}
	if o.NullRate == 0 {
		o.NullRate = 0.05
	}
	return o
}

// Lake is a generated data lake plus its ground truth.
type Lake struct {
	// Tables holds every lake table, sorted by name.
	Tables []*table.Table
	// Truth records what discovery and alignment should find.
	Truth GroundTruth
	// Options echoes the (defaulted) generation options.
	Options LakeOptions
}

// GroundTruth records the generated structure.
type GroundTruth struct {
	// FamilyOf maps a table name to its unionable family index (-1 for
	// joinable companions and noise tables).
	FamilyOf map[string]int
	// UnionableWith maps a table name to the names of its unionable
	// partners (same family, excluding itself), sorted.
	UnionableWith map[string][]string
	// JoinableWith maps a table name to the names of companion tables
	// whose key column shares its key domain, sorted.
	JoinableWith map[string][]string
	// AttrLabels maps a table name to the per-column ground-truth
	// attribute labels (for alignment scoring). Labels are globally
	// consistent within a family.
	AttrLabels map[string][]string
	// KeyColumn maps a table name to the index of its key (entity) column.
	KeyColumn map[string]int
}

// headerSynonyms provides the corrupted spellings per attribute label.
var headerSynonyms = map[string][]string{
	"city":    {"municipality", "town", "place_name", "CityName"},
	"country": {"nation", "state_name", "Country/Region", "land"},
	"measure": {"value", "metric", "reading", "amount", "figure"},
}

// GenerateLake builds a synthetic open-data lake. Each family describes a
// set of entities (cities when the demo KB has enough, synthetic place
// names otherwise) with a country column and per-family measure columns;
// the family's row universe is partitioned into overlapping horizontal
// slices (the unionable tables). Joinable companions key on the same
// entities with fresh measure columns and controlled containment. Noise
// tables draw from an unrelated vocabulary.
func GenerateLake(opts LakeOptions) *Lake {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	lake := &Lake{
		Options: opts,
		Truth: GroundTruth{
			FamilyOf:      make(map[string]int),
			UnionableWith: make(map[string][]string),
			JoinableWith:  make(map[string][]string),
			AttrLabels:    make(map[string][]string),
			KeyColumn:     make(map[string]int),
		},
	}
	cities := kb.DemoCities()
	for f := 0; f < opts.Families; f++ {
		// Partitions sample from a universe only slightly larger than one
		// partition, so sibling partitions overlap heavily — the property
		// that makes them unionable (and lets the synthesized KB cluster
		// their columns into one type).
		universeSize := opts.RowsPerTable * 4 / 3
		if universeSize < opts.RowsPerTable {
			universeSize = opts.RowsPerTable
		}
		entities := make([]string, universeSize)
		countries := make([]string, universeSize)
		for i := range entities {
			if len(cities) > 0 && rng.Float64() < 0.7 {
				c := cities[rng.Intn(len(cities))]
				entities[i] = fmt.Sprintf("%s %d", titleCase(c), f*1000+i)
				countries[i] = titleCase(kb.DemoCountryOf(c))
			} else {
				entities[i] = fmt.Sprintf("%s-%d", titleCase(syntheticName(rng)), f*1000+i)
				countries[i] = titleCase(syntheticName(rng))
			}
		}
		nMeasures := 2 + rng.Intn(2)
		measureScale := make([]float64, nMeasures)
		for m := range measureScale {
			measureScale[m] = float64(intPow(10, 1+rng.Intn(5)))
		}
		var familyNames []string
		for p := 0; p < opts.TablesPerFamily; p++ {
			name := fmt.Sprintf("family%d_part%d", f, p)
			familyNames = append(familyNames, name)
			t, labels, keyCol := buildPartition(rng, opts, name, f, entities, countries, measureScale)
			lake.Tables = append(lake.Tables, t)
			lake.Truth.FamilyOf[name] = f
			lake.Truth.AttrLabels[name] = labels
			lake.Truth.KeyColumn[name] = keyCol
		}
		for _, n := range familyNames {
			var partners []string
			for _, m := range familyNames {
				if m != n {
					partners = append(partners, m)
				}
			}
			sort.Strings(partners)
			lake.Truth.UnionableWith[n] = partners
		}
		// Joinable companions: key column contains a high fraction of the
		// family's entity universe plus some foreign keys.
		for j := 0; j < opts.JoinablePerFamily; j++ {
			name := fmt.Sprintf("family%d_join%d", f, j)
			t, keyCol := buildJoinable(rng, opts, name, f, j, entities)
			lake.Tables = append(lake.Tables, t)
			lake.Truth.FamilyOf[name] = -1
			lake.Truth.KeyColumn[name] = keyCol
			lake.Truth.AttrLabels[name] = []string{fmt.Sprintf("fam%d:key", f), fmt.Sprintf("fam%d:join%d_m0", f, j), fmt.Sprintf("fam%d:join%d_m1", f, j)}
			for _, n := range familyNames {
				lake.Truth.JoinableWith[n] = append(lake.Truth.JoinableWith[n], name)
				lake.Truth.JoinableWith[name] = append(lake.Truth.JoinableWith[name], n)
			}
		}
	}
	for f := 0; f < opts.NoiseTables; f++ {
		name := fmt.Sprintf("noise%d", f)
		t := buildNoise(rng, opts, name)
		lake.Tables = append(lake.Tables, t)
		lake.Truth.FamilyOf[name] = -1
		lake.Truth.KeyColumn[name] = 0
		labels := make([]string, t.NumCols())
		for c := range labels {
			labels[c] = fmt.Sprintf("noise%d:c%d", f, c)
		}
		lake.Truth.AttrLabels[name] = labels
	}
	for k := range lake.Truth.JoinableWith {
		sort.Strings(lake.Truth.JoinableWith[k])
	}
	sort.Slice(lake.Tables, func(i, j int) bool { return lake.Tables[i].Name < lake.Tables[j].Name })
	return lake
}

// buildPartition emits one unionable horizontal slice of a family.
func buildPartition(rng *rand.Rand, opts LakeOptions, name string, f int, entities, countries []string, measureScale []float64) (*table.Table, []string, int) {
	nMeasures := len(measureScale)
	headers := make([]string, 0, 2+nMeasures)
	labels := make([]string, 0, 2+nMeasures)
	headers = append(headers, corruptHeader(rng, opts, "City", "city"))
	labels = append(labels, fmt.Sprintf("fam%d:city", f))
	headers = append(headers, corruptHeader(rng, opts, "Country", "country"))
	labels = append(labels, fmt.Sprintf("fam%d:country", f))
	for m := 0; m < nMeasures; m++ {
		headers = append(headers, corruptHeader(rng, opts, fmt.Sprintf("Measure %c", 'A'+m), "measure"))
		labels = append(labels, fmt.Sprintf("fam%d:m%d", f, m))
	}
	t := table.New(name, headers...)
	perm := rng.Perm(len(entities))
	rows := opts.RowsPerTable
	if rows > len(perm) {
		rows = len(perm)
	}
	for _, ei := range perm[:rows] {
		row := make([]table.Value, 0, t.NumCols())
		row = append(row, table.StringValue(entities[ei]), table.StringValue(countries[ei]))
		for m := 0; m < nMeasures; m++ {
			if rng.Float64() < opts.NullRate {
				row = append(row, table.NullValue())
			} else {
				row = append(row, table.FloatValue(float64(int(rng.Float64()*measureScale[m]*100))/100))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, labels, 0
}

// buildJoinable emits one joinable companion for a family: ~80% of its key
// domain comes from the family's entity universe.
func buildJoinable(rng *rand.Rand, opts LakeOptions, name string, f, j int, entities []string) (*table.Table, int) {
	headers := []string{
		corruptHeader(rng, opts, "City", "city"),
		fmt.Sprintf("Stat %d-%d A", f, j),
		fmt.Sprintf("Stat %d-%d B", f, j),
	}
	t := table.New(name, headers...)
	perm := rng.Perm(len(entities))
	n := len(entities) * 4 / 5
	for _, ei := range perm[:n] {
		t.MustAddRow(
			table.StringValue(entities[ei]),
			table.IntValue(int64(rng.Intn(1000))),
			table.FloatValue(float64(rng.Intn(10000))/100),
		)
	}
	extra := len(entities) / 5
	for i := 0; i < extra; i++ {
		t.MustAddRow(
			table.StringValue(fmt.Sprintf("%s-x%d", titleCase(syntheticName(rng)), i)),
			table.IntValue(int64(rng.Intn(1000))),
			table.FloatValue(float64(rng.Intn(10000))/100),
		)
	}
	return t, 0
}

// buildNoise emits an off-topic table.
func buildNoise(rng *rand.Rand, opts LakeOptions, name string) *table.Table {
	t := table.New(name, "Item", "Batch", "Quantity", "Price")
	for r := 0; r < opts.RowsPerTable; r++ {
		t.MustAddRow(
			table.StringValue("sku-"+syntheticName(rng)),
			table.StringValue(fmt.Sprintf("batch-%d", rng.Intn(50))),
			table.IntValue(int64(rng.Intn(500))),
			table.FloatValue(float64(rng.Intn(100000))/100),
		)
	}
	return t
}

// corruptHeader maybe replaces a header with a synonym or blanks it.
func corruptHeader(rng *rand.Rand, opts LakeOptions, clean, kind string) string {
	if rng.Float64() >= opts.HeaderCorruption {
		return clean
	}
	if rng.Float64() < 0.3 {
		return "" // missing header
	}
	syns := headerSynonyms[kind]
	if len(syns) == 0 {
		return ""
	}
	return syns[rng.Intn(len(syns))]
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
