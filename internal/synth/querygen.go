// Package synth generates the synthetic data DIALITE's demonstration and
// experiments run on:
//
//   - GenerateQueryTable substitutes for the paper's GPT-3 query-table
//     generation (Fig. 5): a prompt selects a domain template and a seeded
//     generator fabricates a plausible table, deterministically.
//   - GenerateLake builds an open-data lake with ground truth — unionable
//     families (horizontal partitions with corrupted headers), joinable
//     tables (controlled key containment) and off-topic noise — so
//     discovery precision/recall, alignment accuracy and integration
//     experiments (X1–X6) can be scored exactly.
//   - Fragments builds vaccine-style fragmented entities (the Fig. 7
//     shape, scaled up) for the FD-vs-outer-join completeness and ER
//     experiments.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kb"
	"repro/internal/table"
)

// domainTemplate is one GPT-3-substitute table recipe.
type domainTemplate struct {
	keywords []string
	columns  []columnSpec
}

type columnSpec struct {
	name string
	gen  func(rng *rand.Rand, row int) table.Value
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func pctValue(rng *rand.Rand, lo, hi int) table.Value {
	return table.StringValue(fmt.Sprintf("%d%%", lo+rng.Intn(hi-lo)))
}

// templates lists the known prompt domains; the first whose keyword
// matches the prompt wins, and the last is the generic fallback.
func templates() []domainTemplate {
	cities := kb.DemoCities()
	vaccines := kb.DemoVaccines()
	agencies := kb.DemoAgencies()
	return []domainTemplate{
		{
			keywords: []string{"vaccine", "approval", "dose"},
			columns: []columnSpec{
				{"Vaccine", func(r *rand.Rand, _ int) table.Value { return table.StringValue(titleCase(pick(r, vaccines))) }},
				{"Approver", func(r *rand.Rand, _ int) table.Value { return table.StringValue(strings.ToUpper(pick(r, agencies))) }},
				{"Country", func(r *rand.Rand, _ int) table.Value {
					return table.StringValue(titleCase(pick(r, countriesOf(cities))))
				}},
				{"Efficacy", func(r *rand.Rand, _ int) table.Value { return pctValue(r, 60, 96) }},
				{"Doses Shipped", func(r *rand.Rand, _ int) table.Value { return table.StringValue(fmt.Sprintf("%dM", 1+r.Intn(400))) }},
			},
		},
		{
			keywords: []string{"covid", "case", "pandemic", "vaccination"},
			columns: []columnSpec{
				{"Country", func(r *rand.Rand, _ int) table.Value {
					return table.StringValue(titleCase(pick(r, countriesOf(cities))))
				}},
				{"City", func(r *rand.Rand, _ int) table.Value { return table.StringValue(titleCase(pick(r, cities))) }},
				{"Vaccination Rate (1+ dose)", func(r *rand.Rand, _ int) table.Value { return pctValue(r, 40, 95) }},
				{"Total Cases", func(r *rand.Rand, _ int) table.Value {
					return table.StringValue(fmt.Sprintf("%.1fM", 0.1+r.Float64()*3))
				}},
				{"Death Rate (per 100k residents)", func(r *rand.Rand, _ int) table.Value { return table.IntValue(int64(50 + r.Intn(400))) }},
			},
		},
		{
			keywords: []string{"weather", "temperature", "climate"},
			columns: []columnSpec{
				{"City", func(r *rand.Rand, _ int) table.Value { return table.StringValue(titleCase(pick(r, cities))) }},
				{"Temperature", func(r *rand.Rand, _ int) table.Value { return table.FloatValue(float64(r.Intn(350))/10 - 5) }},
				{"Humidity", func(r *rand.Rand, _ int) table.Value { return pctValue(r, 20, 100) }},
				{"Condition", func(r *rand.Rand, _ int) table.Value {
					return table.StringValue(pick(r, []string{"sunny", "cloudy", "rain", "snow", "fog"}))
				}},
				{"Wind (km/h)", func(r *rand.Rand, _ int) table.Value { return table.IntValue(int64(r.Intn(80))) }},
			},
		},
		{
			keywords: []string{}, // generic fallback
			columns: []columnSpec{
				{"ID", func(_ *rand.Rand, row int) table.Value { return table.IntValue(int64(row + 1)) }},
				{"Name", func(r *rand.Rand, _ int) table.Value { return table.StringValue(syntheticName(r)) }},
				{"Category", func(r *rand.Rand, _ int) table.Value {
					return table.StringValue(pick(r, []string{"alpha", "beta", "gamma", "delta"}))
				}},
				{"Score", func(r *rand.Rand, _ int) table.Value { return table.FloatValue(float64(r.Intn(1000)) / 10) }},
				{"Active", func(r *rand.Rand, _ int) table.Value { return table.BoolValue(r.Intn(2) == 0) }},
			},
		},
	}
}

// countriesOf returns the distinct countries of the demo cities.
func countriesOf(cities []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cities {
		country := kb.DemoCountryOf(c)
		if country != "" && !seen[country] {
			seen[country] = true
			out = append(out, country)
		}
	}
	return out
}

// syllables fuels deterministic fake-name generation.
var syllables = []string{"ar", "bel", "cor", "dan", "el", "fir", "gal", "hom", "ir", "jas", "kel", "lor", "mar", "nor", "or", "pel", "qu", "rin", "sol", "tor", "ul", "ver", "wil", "xan", "yor", "zel"}

func syntheticName(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// GenerateQueryTable fabricates a query table from a free-text prompt —
// the stand-in for the paper's GPT-3 integration (Fig. 5). The prompt
// picks a domain template by keyword ("covid", "vaccine", "weather", else
// a generic record table); rows and cols bound the result (cols beyond the
// template are filled with generic numeric attributes). The same
// (prompt, rows, cols, seed) always yields the same table.
func GenerateQueryTable(prompt string, rows, cols int, seed int64) (*table.Table, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("synth: rows and cols must be positive (got %d, %d)", rows, cols)
	}
	lower := strings.ToLower(prompt)
	tmpls := templates()
	chosen := tmpls[len(tmpls)-1]
	for _, tp := range tmpls[:len(tmpls)-1] {
		for _, kw := range tp.keywords {
			if strings.Contains(lower, kw) {
				chosen = tp
				break
			}
		}
		if len(chosen.keywords) != 0 {
			break
		}
	}
	rng := rand.New(rand.NewSource(seed))
	specs := chosen.columns
	if cols < len(specs) {
		specs = specs[:cols]
	}
	headers := make([]string, 0, cols)
	for _, s := range specs {
		headers = append(headers, s.name)
	}
	for i := len(specs); i < cols; i++ {
		headers = append(headers, fmt.Sprintf("Attribute %d", i+1))
	}
	t := table.New(queryTableName(prompt), headers...)
	for r := 0; r < rows; r++ {
		row := make([]table.Value, 0, cols)
		for _, s := range specs {
			row = append(row, s.gen(rng, r))
		}
		for i := len(specs); i < cols; i++ {
			row = append(row, table.FloatValue(float64(rng.Intn(10000))/100))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func queryTableName(prompt string) string {
	words := strings.Fields(strings.ToLower(prompt))
	if len(words) > 3 {
		words = words[:3]
	}
	if len(words) == 0 {
		return "generated_query"
	}
	return "q_" + strings.Join(words, "_")
}

// titleCase capitalizes the first letter of each space-separated word
// (strings.Title is deprecated and over-general for ASCII demo vocab).
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
