package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/kb"
	"repro/internal/table"
)

// SemanticLake scales the paper's Fig. 2 situation: unionable tables whose
// VALUE sets are disjoint (different cities, different countries) so that
// only semantics — the KB's city/country types and locatedIn relationships
// — reveals their unionability. Value-overlap search scores them near
// zero; SANTOS with the curated KB finds them. The lake contains:
//
//   - one (Country, City, Vaccination Rate) table per group of demo
//     countries, city sets pairwise disjoint (like T1 vs T2);
//   - joinable companions (City, Total Cases, Death Rate) sampling cities
//     across groups (like T3);
//   - off-topic noise tables.
//
// Ground truth mirrors synth.Lake's.
func SemanticLake(seed int64, unionTables, joinTables, noiseTables int) *Lake {
	rng := rand.New(rand.NewSource(seed))
	if unionTables <= 0 {
		unionTables = 7
	}
	if joinTables < 0 {
		joinTables = 0
	}
	if noiseTables < 0 {
		noiseTables = 0
	}
	lake := &Lake{
		Truth: GroundTruth{
			FamilyOf:      make(map[string]int),
			UnionableWith: make(map[string][]string),
			JoinableWith:  make(map[string][]string),
			AttrLabels:    make(map[string][]string),
			KeyColumn:     make(map[string]int),
		},
	}
	// Group demo countries; each union table gets the cities of its own
	// country group, so city AND country values are disjoint across
	// tables.
	byCountry := make(map[string][]string)
	for _, city := range kb.DemoCities() {
		c := kb.DemoCountryOf(city)
		byCountry[c] = append(byCountry[c], city)
	}
	countries := make([]string, 0, len(byCountry))
	for c := range byCountry {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	groups := make([][]string, unionTables)
	for i, c := range countries {
		groups[i%unionTables] = append(groups[i%unionTables], c)
	}
	var unionNames []string
	var allCities []string
	for g, cs := range groups {
		name := fmt.Sprintf("sem_union%d", g)
		unionNames = append(unionNames, name)
		t := table.New(name, "Country", "City", "Vaccination Rate (1+ dose)")
		for _, country := range cs {
			for _, city := range byCountry[country] {
				allCities = append(allCities, city)
				t.MustAddRow(
					table.StringValue(titleCase(country)),
					table.StringValue(titleCase(city)),
					pctValue(rng, 40, 95),
				)
			}
		}
		lake.Tables = append(lake.Tables, t)
		lake.Truth.FamilyOf[name] = 0
		lake.Truth.KeyColumn[name] = 1
		lake.Truth.AttrLabels[name] = []string{"country", "city", "rate"}
	}
	for _, n := range unionNames {
		var partners []string
		for _, m := range unionNames {
			if m != n {
				partners = append(partners, m)
			}
		}
		sort.Strings(partners)
		lake.Truth.UnionableWith[n] = partners
	}
	sort.Strings(allCities)
	for j := 0; j < joinTables; j++ {
		name := fmt.Sprintf("sem_join%d", j)
		t := table.New(name, "City", "Total Cases", "Death Rate (per 100k residents)")
		perm := rng.Perm(len(allCities))
		n := len(allCities) / 2
		for _, ci := range perm[:n] {
			t.MustAddRow(
				table.StringValue(titleCase(allCities[ci])),
				table.StringValue(fmt.Sprintf("%.1fM", 0.1+rng.Float64()*3)),
				table.IntValue(int64(50+rng.Intn(400))),
			)
		}
		lake.Tables = append(lake.Tables, t)
		lake.Truth.FamilyOf[name] = -1
		lake.Truth.KeyColumn[name] = 0
		lake.Truth.AttrLabels[name] = []string{"city", "cases", "deaths"}
		for _, n2 := range unionNames {
			lake.Truth.JoinableWith[n2] = append(lake.Truth.JoinableWith[n2], name)
			lake.Truth.JoinableWith[name] = append(lake.Truth.JoinableWith[name], n2)
		}
	}
	for f := 0; f < noiseTables; f++ {
		name := fmt.Sprintf("sem_noise%d", f)
		t := buildNoise(rng, LakeOptions{RowsPerTable: 12}, name)
		t.Name = name
		lake.Tables = append(lake.Tables, t)
		lake.Truth.FamilyOf[name] = -1
		lake.Truth.KeyColumn[name] = 0
		lake.Truth.AttrLabels[name] = []string{"item", "batch", "qty", "price"}
	}
	for k2 := range lake.Truth.JoinableWith {
		sort.Strings(lake.Truth.JoinableWith[k2])
	}
	sort.Slice(lake.Tables, func(i, j int) bool { return lake.Tables[i].Name < lake.Tables[j].Name })
	return lake
}
