package synth

import (
	"testing"

	"repro/internal/tokenize"
)

func TestSemanticLakeDisjointUnionables(t *testing.T) {
	lake := SemanticLake(3, 7, 5, 6)
	if len(lake.Tables) != 7+5+6 {
		t.Fatalf("tables = %d", len(lake.Tables))
	}
	// Unionable tables must have pairwise disjoint city AND country sets —
	// that is the Fig. 2 property the experiment depends on.
	var unionTables []int
	for i, tb := range lake.Tables {
		if lake.Truth.FamilyOf[tb.Name] == 0 {
			unionTables = append(unionTables, i)
		}
	}
	if len(unionTables) != 7 {
		t.Fatalf("union tables = %d", len(unionTables))
	}
	for x := 0; x < len(unionTables); x++ {
		for y := x + 1; y < len(unionTables); y++ {
			a := lake.Tables[unionTables[x]]
			b := lake.Tables[unionTables[y]]
			cities := tokenize.Overlap(
				tokenize.ValueSet(a.DistinctStrings(1)),
				tokenize.ValueSet(b.DistinctStrings(1)))
			countries := tokenize.Overlap(
				tokenize.ValueSet(a.DistinctStrings(0)),
				tokenize.ValueSet(b.DistinctStrings(0)))
			if cities != 0 || countries != 0 {
				t.Errorf("%s and %s share values (cities=%d countries=%d)", a.Name, b.Name, cities, countries)
			}
		}
	}
}

func TestSemanticLakeJoinablesOverlap(t *testing.T) {
	lake := SemanticLake(3, 7, 2, 0)
	var join, union0 int
	for i, tb := range lake.Tables {
		switch tb.Name {
		case "sem_join0":
			join = i
		case "sem_union0":
			union0 = i
		}
	}
	ov := tokenize.Overlap(
		tokenize.ValueSet(lake.Tables[join].DistinctStrings(0)),
		tokenize.ValueSet(lake.Tables[union0].DistinctStrings(1)))
	if ov == 0 {
		t.Error("joinable companion must share cities with union tables")
	}
	if len(lake.Truth.JoinableWith["sem_union0"]) != 2 {
		t.Errorf("joinable truth = %v", lake.Truth.JoinableWith["sem_union0"])
	}
}

func TestSemanticLakeGroundTruthComplete(t *testing.T) {
	lake := SemanticLake(1, 4, 2, 2)
	for _, tb := range lake.Tables {
		if _, ok := lake.Truth.FamilyOf[tb.Name]; !ok {
			t.Errorf("%s missing from FamilyOf", tb.Name)
		}
		if len(lake.Truth.AttrLabels[tb.Name]) != tb.NumCols() {
			t.Errorf("%s label arity mismatch", tb.Name)
		}
	}
	if len(lake.Truth.UnionableWith["sem_union0"]) != 3 {
		t.Errorf("unionable truth = %v", lake.Truth.UnionableWith["sem_union0"])
	}
}
