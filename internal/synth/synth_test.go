package synth

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func TestGenerateQueryTableCovid(t *testing.T) {
	// The paper's Fig. 5: "generate a query table about COVID-19 cases
	// that has 5 columns and 5 rows".
	q, err := GenerateQueryTable("COVID-19 cases in cities", 5, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 5 || q.NumCols() != 5 {
		t.Fatalf("generated %dx%d, want 5x5", q.NumRows(), q.NumCols())
	}
	if _, ok := q.ColumnIndex("City"); !ok {
		t.Errorf("covid template must have a City column: %v", q.Columns)
	}
	if !strings.HasPrefix(q.Name, "q_") {
		t.Errorf("query name = %q", q.Name)
	}
}

func TestGenerateQueryTableDeterministic(t *testing.T) {
	a, _ := GenerateQueryTable("vaccine approvals", 4, 3, 7)
	b, _ := GenerateQueryTable("vaccine approvals", 4, 3, 7)
	if !a.Equal(b) {
		t.Error("same seed must generate identical tables")
	}
	c, _ := GenerateQueryTable("vaccine approvals", 4, 3, 8)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateQueryTableTemplates(t *testing.T) {
	for prompt, wantCol := range map[string]string{
		"vaccine doses":      "Vaccine",
		"weather by city":    "Temperature",
		"anything else here": "Name",
	} {
		q, err := GenerateQueryTable(prompt, 3, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := q.ColumnIndex(wantCol); !ok {
			t.Errorf("prompt %q: missing column %q in %v", prompt, wantCol, q.Columns)
		}
	}
}

func TestGenerateQueryTableWideAndNarrow(t *testing.T) {
	wide, err := GenerateQueryTable("covid", 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wide.NumCols() != 8 || wide.Columns[7] != "Attribute 8" {
		t.Errorf("wide columns = %v", wide.Columns)
	}
	narrow, err := GenerateQueryTable("covid", 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.NumCols() != 2 {
		t.Errorf("narrow cols = %d", narrow.NumCols())
	}
	if _, err := GenerateQueryTable("covid", 0, 3, 1); err == nil {
		t.Error("zero rows must error")
	}
}

func TestGenerateLakeShape(t *testing.T) {
	lake := GenerateLake(LakeOptions{Seed: 3, Families: 2, TablesPerFamily: 3, JoinablePerFamily: 1, NoiseTables: 2, RowsPerTable: 10})
	wantTables := 2*3 + 2*1 + 2
	if len(lake.Tables) != wantTables {
		t.Fatalf("lake has %d tables, want %d", len(lake.Tables), wantTables)
	}
	// Ground truth covers every table.
	for _, tb := range lake.Tables {
		if _, ok := lake.Truth.FamilyOf[tb.Name]; !ok {
			t.Errorf("table %q missing from FamilyOf", tb.Name)
		}
		if _, ok := lake.Truth.AttrLabels[tb.Name]; !ok {
			t.Errorf("table %q missing from AttrLabels", tb.Name)
		}
		if len(lake.Truth.AttrLabels[tb.Name]) != tb.NumCols() {
			t.Errorf("table %q label arity mismatch", tb.Name)
		}
	}
	// Unionable partners are symmetric and exclude self.
	for name, partners := range lake.Truth.UnionableWith {
		for _, p := range partners {
			if p == name {
				t.Errorf("%q unionable with itself", name)
			}
			found := false
			for _, q := range lake.Truth.UnionableWith[p] {
				if q == name {
					found = true
				}
			}
			if !found {
				t.Errorf("unionable truth asymmetric: %s->%s", name, p)
			}
		}
	}
}

func TestGenerateLakeDeterministic(t *testing.T) {
	a := GenerateLake(LakeOptions{Seed: 9})
	b := GenerateLake(LakeOptions{Seed: 9})
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range a.Tables {
		if !a.Tables[i].Equal(b.Tables[i]) {
			t.Fatalf("table %s differs between runs", a.Tables[i].Name)
		}
	}
}

func TestGenerateLakeJoinableContainment(t *testing.T) {
	lake := GenerateLake(LakeOptions{Seed: 5, Families: 1, TablesPerFamily: 2, JoinablePerFamily: 1, NoiseTables: 1, RowsPerTable: 15})
	// The joinable companion's key domain must overlap each partition's
	// key domain substantially (that is what joinable search must find).
	var join, part *table.Table
	for _, tb := range lake.Tables {
		if tb.Name == "family0_join0" {
			join = tb
		}
		if tb.Name == "family0_part0" {
			part = tb
		}
	}
	if join == nil || part == nil {
		t.Fatal("expected tables missing")
	}
	joinKeys := make(map[string]bool)
	for _, v := range join.DistinctStrings(lake.Truth.KeyColumn[join.Name]) {
		joinKeys[v] = true
	}
	overlap := 0
	partKeys := part.DistinctStrings(lake.Truth.KeyColumn[part.Name])
	for _, v := range partKeys {
		if joinKeys[v] {
			overlap++
		}
	}
	if len(partKeys) == 0 || float64(overlap)/float64(len(partKeys)) < 0.5 {
		t.Errorf("joinable containment = %d/%d, want >= 0.5", overlap, len(partKeys))
	}
}

func TestGenerateLakeHeaderCorruption(t *testing.T) {
	clean := GenerateLake(LakeOptions{Seed: 4, HeaderCorruption: 0})
	dirty := GenerateLake(LakeOptions{Seed: 4, HeaderCorruption: 0.9})
	cleanCity, dirtyCity := 0, 0
	for _, tb := range clean.Tables {
		for _, h := range tb.Columns {
			if h == "City" {
				cleanCity++
			}
		}
	}
	for _, tb := range dirty.Tables {
		for _, h := range tb.Columns {
			if h == "City" {
				dirtyCity++
			}
		}
	}
	if dirtyCity >= cleanCity {
		t.Errorf("corruption did not reduce clean headers: %d vs %d", dirtyCity, cleanCity)
	}
}

func TestFragments(t *testing.T) {
	fs := Fragments(FragmentOptions{Seed: 11, Entities: 15})
	if len(fs.Tables) != 3 {
		t.Fatalf("fragments = %d tables", len(fs.Tables))
	}
	ta, tb, tc := fs.Tables[0], fs.Tables[1], fs.Tables[2]
	if ta.Columns[0] != "Name" || tb.Columns[0] != "Country" || tc.Columns[1] != "Country" {
		t.Errorf("fragment headers wrong: %v %v %v", ta.Columns, tb.Columns, tc.Columns)
	}
	if tc.NumRows() != 15 {
		t.Errorf("TC rows = %d, want one per entity", tc.NumRows())
	}
	// Aliases resolve through the generated KB.
	resolved := 0
	for r := 0; r < tc.NumRows(); r++ {
		v := tc.Cell(r, 0).String()
		if _, ok := fs.EntityOf[fs.Knowledge.Canonical(v)]; ok {
			resolved++
		}
	}
	if resolved != tc.NumRows() {
		t.Errorf("only %d/%d names resolve to entities", resolved, tc.NumRows())
	}
}

func TestFragmentLabelRows(t *testing.T) {
	fs := Fragments(FragmentOptions{Seed: 2, Entities: 5})
	labels := fs.LabelRows(fs.Tables[2]) // TC has Name and Country
	for i, l := range labels {
		if !strings.HasPrefix(l, "e") {
			t.Errorf("row %d label = %q, want entity label", i, l)
		}
	}
	// A table with no recognizable values gets unique row labels.
	junk := table.New("junk", "Name")
	junk.MustAddRow(table.StringValue("zzz"))
	jl := fs.LabelRows(junk)
	if jl[0] != "row-0" {
		t.Errorf("junk label = %q", jl[0])
	}
}

func TestCompleteTuples(t *testing.T) {
	tb := table.New("t", "a", "b")
	tb.MustAddRow(table.IntValue(1), table.IntValue(2))
	tb.MustAddRow(table.IntValue(1), table.NullValue())
	tb.MustAddRow(table.ProducedNull(), table.IntValue(2))
	if got := CompleteTuples(tb); got != 1 {
		t.Errorf("CompleteTuples = %d, want 1", got)
	}
}

func TestInitials(t *testing.T) {
	if initials("Johnson And Johnson") != "JAJ" {
		t.Errorf("initials = %q", initials("Johnson And Johnson"))
	}
}
