package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReadCSV parses CSV from r into a table. The first record is taken as the
// header row. Cells are typed with Parse, then each column is normalized:
// if a column mixes Int and Float values, the ints are promoted to floats so
// the column has one numeric type (mirroring pandas' column dtype
// unification, which the paper's prototype relies on).
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // open data is ragged; we pad/truncate below
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: read csv %q: empty input", name)
	}
	header := records[0]
	t := New(name, header...)
	for _, rec := range records[1:] {
		row := make([]Value, len(header))
		for i := range row {
			if i < len(rec) {
				row[i] = Parse(rec[i])
			} else {
				row[i] = NullValue()
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.normalizeNumericColumns()
	return t, nil
}

// normalizeNumericColumns promotes Int cells to Float in columns that
// contain at least one Float, so each column carries a single numeric kind.
func (t *Table) normalizeNumericColumns() {
	for c := 0; c < t.NumCols(); c++ {
		hasFloat := false
		for _, row := range t.Rows {
			if row[c].Kind() == Float {
				hasFloat = true
				break
			}
		}
		if !hasFloat {
			continue
		}
		for _, row := range t.Rows {
			if row[c].Kind() == Int {
				row[c] = FloatValue(float64(row[c].IntVal()))
			}
		}
	}
}

// WriteCSV writes the table as CSV: a header row followed by data rows.
// Missing nulls become empty fields; produced nulls are written as "⊥" so a
// round trip preserves the null kind.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("table: write csv %q: %w", t.Name, err)
	}
	rec := make([]string, t.NumCols())
	for _, row := range t.Rows {
		for i, v := range row {
			switch v.Kind() {
			case Null:
				rec[i] = ""
			default:
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write csv %q: %w", t.Name, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("table: write csv %q: %w", t.Name, err)
	}
	return nil
}

// ReadCSVFile reads one CSV file; the table is named after the file's base
// name without extension.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: open %s: %w", path, err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadCSV(f, name)
}

// WriteCSVFile writes the table to path, creating parent directories.
func (t *Table) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("table: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: create %s: %w", path, err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("table: close %s: %w", path, err)
	}
	return nil
}

// LoadDir reads every *.csv file in dir (non-recursively) and returns the
// tables sorted by name, as a data-lake loading convenience.
func LoadDir(dir string) ([]*Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("table: read dir %s: %w", dir, err)
	}
	var tables []*Table
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			continue
		}
		t, err := ReadCSVFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	return tables, nil
}
