package table

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "Country,City,Rate\nGermany,Berlin,63\nEngland,Manchester,78\n"
	tb, err := ReadCSV(strings.NewReader(in), "q")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "q" || tb.NumRows() != 2 || tb.NumCols() != 3 {
		t.Fatalf("parsed %dx%d name=%q", tb.NumRows(), tb.NumCols(), tb.Name)
	}
	if tb.Cell(0, 2).Kind() != Int {
		t.Errorf("Rate should infer Int, got %v", tb.Cell(0, 2).Kind())
	}
}

func TestReadCSVRaggedRowsPadded(t *testing.T) {
	in := "a,b,c\n1,2\n1,2,3,4\n"
	tb, err := ReadCSV(strings.NewReader(in), "r")
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Cell(0, 2).IsNull() {
		t.Error("short row must be padded with nulls")
	}
	if tb.NumCols() != 3 {
		t.Error("long rows must be truncated to the header arity")
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "e"); err == nil {
		t.Error("empty CSV must error")
	}
}

func TestNumericColumnUnification(t *testing.T) {
	in := "v\n1\n2.5\n3\n"
	tb, err := ReadCSV(strings.NewReader(in), "n")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.NumRows(); r++ {
		if tb.Cell(r, 0).Kind() != Float {
			t.Errorf("row %d kind = %v, want Float after unification", r, tb.Cell(r, 0).Kind())
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New("rt", "name", "n", "f", "flag", "miss", "prod")
	tb.MustAddRow(StringValue("Berlin"), IntValue(1), FloatValue(2.5), BoolValue(true), NullValue(), ProducedNull())
	tb.MustAddRow(StringValue("a,b\"quoted\""), IntValue(-2), FloatValue(0.5), BoolValue(false), NullValue(), ProducedNull())
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Equal(back) {
		t.Errorf("round trip mismatch:\nin:\n%s\nout:\n%s", tb, back)
	}
	if back.Cell(0, 5).Kind() != PNull {
		t.Error("produced null must survive a round trip")
	}
	if back.Cell(0, 4).Kind() != Null {
		t.Error("missing null must survive a round trip")
	}
}

func TestFileAndDirIO(t *testing.T) {
	dir := t.TempDir()
	a := New("a", "x")
	a.MustAddRow(IntValue(1))
	b := New("b", "y")
	b.MustAddRow(StringValue("v"))
	if err := a.WriteCSVFile(filepath.Join(dir, "a.csv")); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSVFile(filepath.Join(dir, "b.csv")); err != nil {
		t.Fatal(err)
	}
	// A non-CSV file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tables, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Name != "a" || tables[1].Name != "b" {
		t.Fatalf("LoadDir = %v", tables)
	}
	one, err := ReadCSVFile(filepath.Join(dir, "a.csv"))
	if err != nil || one.Name != "a" {
		t.Fatalf("ReadCSVFile = %v, %v", one, err)
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadDir on missing dir must error")
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("ReadCSVFile on missing file must error")
	}
}
