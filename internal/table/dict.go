package table

import (
	"sync"
	"sync/atomic"
)

// NullID is the reserved dictionary ID of nulls. Both null kinds share it,
// mirroring Value.Key: nulls are indistinguishable to join and subsumption
// semantics, which is exactly the identity the dictionary encodes.
const NullID uint32 = 0

// Dict interns cell values into dense uint32 IDs. Two values receive the
// same ID exactly when they are Equal (their Key strings collide), so the
// performance-critical layers — the FD complementation closure above all —
// can replace string-keyed hashing and Value.Equal comparisons with integer
// identity. A Dict is safe for concurrent use; a lake owns one Dict shared
// by every pipeline operation, so IDs are stable lake-wide.
//
// The table is split by kind (strings, integers, non-integral floats,
// booleans) rather than keyed by Value.Key, so interning allocates nothing:
// no key string is ever built. Integral floats land in the integer map,
// preserving Key's Int/Float collision ("82" joins "82.0").
//
// IDs are dense: non-null values receive 1, 2, 3, ... in interning order,
// which keeps derived structures (bucket keys, ID-slice hashes) compact.
// The assignment order — and therefore the concrete IDs — is not
// deterministic under concurrent interning; nothing may depend on ID order,
// only on ID equality.
//
// IDs are uint32 with 0 reserved for nulls, so a Dict holds at most
// 2^32-1 distinct non-null values (~4.3B). Interning past that limit
// panics rather than silently recycling IDs; open-data corpora that large
// need a wider ID type first.
type Dict struct {
	mu     sync.RWMutex
	strs   map[string]uint32
	ints   map[int64]uint32
	floats map[float64]uint32
	bools  [2]uint32 // [false, true]; 0 = unassigned
	nan    uint32    // NaN cannot key a map (NaN != NaN); 0 = unassigned
	vals   []Value   // vals[id-1] is the first value interned under the ID
	// mapsStale is set by RestoreDict, which defers building the kind maps
	// from the vals log until a caller actually needs value→ID resolution:
	// ID-based reads (Value, Len, Snapshot) — all a freshly restored lake
	// serves — work straight off the log. One atomic load on warmed dicts.
	mapsStale atomic.Bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		strs:   make(map[string]uint32),
		ints:   make(map[int64]uint32),
		floats: make(map[float64]uint32),
	}
}

// ensureMaps builds the deferred kind maps of a restored dictionary before
// the first value→ID resolution. Callers invoke it before taking either
// lock.
func (d *Dict) ensureMaps() {
	if !d.mapsStale.Load() {
		return
	}
	d.mu.Lock()
	if d.mapsStale.Load() {
		d.buildMapsLocked()
		d.mapsStale.Store(false)
	}
	d.mu.Unlock()
}

// buildMapsLocked reconstructs the kind maps from the vals log in one pass
// over presized maps (incremental growth would rehash the large maps several
// times). The log is walked in reverse so that if it ever held duplicates,
// the earliest ID wins — the same answer sequential interning would give.
func (d *Dict) buildMapsLocked() {
	var nstr, nint, nfloat int
	for i := range d.vals {
		switch v := &d.vals[i]; v.kind {
		case String:
			nstr++
		case Int:
			nint++
		case Float:
			if v.f == float64(int64(v.f)) {
				nint++
			} else if v.f == v.f {
				nfloat++
			}
		}
	}
	d.strs = make(map[string]uint32, nstr)
	d.ints = make(map[int64]uint32, nint)
	d.floats = make(map[float64]uint32, nfloat)
	for i := len(d.vals) - 1; i >= 0; i-- {
		id := uint32(i + 1)
		switch v := &d.vals[i]; v.kind {
		case String:
			d.strs[v.s] = id
		case Int:
			d.ints[v.i] = id
		case Float:
			switch {
			case v.f == float64(int64(v.f)):
				d.ints[int64(v.f)] = id
			case v.f != v.f:
				d.nan = id
			default:
				d.floats[v.f] = id
			}
		case Bool:
			if v.b {
				d.bools[1] = id
			} else {
				d.bools[0] = id
			}
		}
	}
}

// lookupLocked finds v's ID under either lock; 0 means not interned yet
// (NullID is handled by the callers).
func (d *Dict) lookupLocked(v Value) uint32 {
	switch v.kind {
	case String:
		return d.strs[v.s]
	case Int:
		return d.ints[v.i]
	case Float:
		if v.f == float64(int64(v.f)) {
			return d.ints[int64(v.f)]
		}
		if v.f != v.f {
			return d.nan
		}
		return d.floats[v.f]
	case Bool:
		if v.b {
			return d.bools[1]
		}
		return d.bools[0]
	default:
		return 0
	}
}

// idCapacityExceeded reports whether a dictionary already holding n values
// has exhausted the uint32 ID space (0 is reserved, so the last usable ID
// is MaxUint32 and the dictionary is full once n values are interned with
// n+1 > MaxUint32).
func idCapacityExceeded(n int) bool {
	return uint64(n) >= 1<<32-1
}

// assignLocked registers v under a fresh ID; the write lock must be held.
func (d *Dict) assignLocked(v Value) uint32 {
	if idCapacityExceeded(len(d.vals)) {
		panic("table: Dict full: more than ~4B distinct values (uint32 ID space exhausted)")
	}
	d.vals = append(d.vals, v)
	id := uint32(len(d.vals))
	switch v.kind {
	case String:
		d.strs[v.s] = id
	case Int:
		d.ints[v.i] = id
	case Float:
		switch {
		case v.f == float64(int64(v.f)):
			d.ints[int64(v.f)] = id
		case v.f != v.f:
			d.nan = id
		default:
			d.floats[v.f] = id
		}
	case Bool:
		if v.b {
			d.bools[1] = id
		} else {
			d.bools[0] = id
		}
	}
	return id
}

// Intern returns the ID of v, assigning a fresh one on first sight. Nulls
// of either kind intern to NullID.
func (d *Dict) Intern(v Value) uint32 {
	if v.IsNull() {
		return NullID
	}
	d.ensureMaps()
	d.mu.RLock()
	id := d.lookupLocked(v)
	d.mu.RUnlock()
	if id != 0 {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id := d.lookupLocked(v); id != 0 {
		return id
	}
	return d.assignLocked(v)
}

// InternRow interns every cell of row into dst, which is grown as needed
// and returned. It is the bulk path the FD closure and lake preprocessing
// use: the read lock is taken once per row, and the write lock only when
// the row carries values never seen before.
func (d *Dict) InternRow(row []Value, dst []uint32) []uint32 {
	if cap(dst) < len(row) {
		dst = make([]uint32, len(row))
	}
	dst = dst[:len(row)]
	misses := 0
	d.ensureMaps()
	d.mu.RLock()
	for i, v := range row {
		if v.IsNull() {
			dst[i] = NullID
			continue
		}
		if dst[i] = d.lookupLocked(v); dst[i] == 0 {
			misses++
		}
	}
	d.mu.RUnlock()
	if misses == 0 {
		return dst
	}
	d.mu.Lock()
	for i, v := range row {
		if dst[i] == 0 && !v.IsNull() {
			if dst[i] = d.lookupLocked(v); dst[i] == 0 {
				dst[i] = d.assignLocked(v)
			}
		}
	}
	d.mu.Unlock()
	return dst
}

// Lookup returns the ID of v without interning it. ok reports whether v has
// an ID: nulls always do (NullID), and non-null values exactly when a prior
// Intern assigned one. Cache layers keyed by value ID (the lake's KB
// annotation cache) use Lookup so probe values never grow the dictionary.
func (d *Dict) Lookup(v Value) (uint32, bool) {
	if v.IsNull() {
		return NullID, true
	}
	d.ensureMaps()
	d.mu.RLock()
	id := d.lookupLocked(v)
	d.mu.RUnlock()
	return id, id != 0
}

// Value returns a representative value for id — the first value interned
// under it — and whether the ID is known. NullID reports a missing null.
func (d *Dict) Value(id uint32) (Value, bool) {
	if id == NullID {
		return NullValue(), true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) > len(d.vals) {
		return Value{}, false
	}
	return d.vals[id-1], true
}

// Len reports how many distinct non-null values have been interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}
