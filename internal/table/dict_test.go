package table

import (
	"math"
	"sync"
	"testing"
)

// TestEqualKeyDictConsistency pins the identity the interned closure relies
// on: Equal(a,b) ⟺ Key(a)==Key(b) ⟺ Intern(a)==Intern(b), including the
// corners (NaN, integral floats, int/float pairs beyond 2^53, null kinds).
func TestEqualKeyDictConsistency(t *testing.T) {
	const big = int64(1) << 53
	vals := []Value{
		NullValue(), ProducedNull(),
		BoolValue(true), BoolValue(false),
		StringValue(""), StringValue("82"), StringValue("x"),
		IntValue(0), IntValue(82), IntValue(-82),
		IntValue(big), IntValue(big + 1), IntValue(-big - 1),
		FloatValue(82), FloatValue(82.5), FloatValue(-0.0),
		FloatValue(float64(big)), FloatValue(float64(big) + 2),
		FloatValue(math.NaN()), FloatValue(math.Inf(1)), FloatValue(math.Inf(-1)),
		FloatValue(0.1), FloatValue(1e300),
	}
	d := NewDict()
	for _, a := range vals {
		for _, b := range vals {
			eq := a.Equal(b)
			if keyEq := a.Key() == b.Key(); eq != keyEq {
				t.Errorf("Equal(%v,%v)=%v but Key equality=%v", a, b, eq, keyEq)
			}
			if idEq := d.Intern(a) == d.Intern(b); eq != idEq {
				t.Errorf("Equal(%v,%v)=%v but Dict ID equality=%v", a, b, eq, idEq)
			}
			if eq != b.Equal(a) {
				t.Errorf("Equal(%v,%v) is asymmetric", a, b)
			}
			if (a.Compare(b) == 0) != eq && !a.IsNull() {
				t.Errorf("Compare(%v,%v)==0 disagrees with Equal=%v", a, b, eq)
			}
		}
	}
}

func TestDictInternLookupRoundTrip(t *testing.T) {
	d := NewDict()
	vals := []Value{
		StringValue("Boston"),
		IntValue(82),
		FloatValue(3.5),
		BoolValue(true),
		StringValue(""),
		StringValue("boston"),
	}
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		ids[i] = d.Intern(v)
		if ids[i] == NullID {
			t.Fatalf("non-null %v interned to NullID", v)
		}
	}
	// Dense assignment in interning order.
	for i, id := range ids {
		if id != uint32(i+1) {
			t.Fatalf("id of %v = %d, want %d", vals[i], id, i+1)
		}
	}
	if d.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(vals))
	}
	// Round trip: representative is Equal to the interned value.
	for i, id := range ids {
		got, ok := d.Value(id)
		if !ok || !got.Equal(vals[i]) {
			t.Fatalf("Value(%d) = %v, %v; want %v", id, got, ok, vals[i])
		}
	}
	// Re-interning is stable.
	for i, v := range vals {
		if id := d.Intern(v); id != ids[i] {
			t.Fatalf("re-intern of %v = %d, want %d", v, id, ids[i])
		}
	}
}

func TestDictEqualValuesShareID(t *testing.T) {
	d := NewDict()
	// Int 82 and Float 82.0 are Equal, so they must share an ID.
	a := d.Intern(IntValue(82))
	b := d.Intern(FloatValue(82))
	if a != b {
		t.Fatalf("IntValue(82) id %d != FloatValue(82) id %d", a, b)
	}
	if c := d.Intern(FloatValue(82.5)); c == a {
		t.Fatalf("FloatValue(82.5) shares id %d with 82", c)
	}
	// Both null kinds intern to NullID.
	if id := d.Intern(NullValue()); id != NullID {
		t.Fatalf("NullValue interned to %d", id)
	}
	if id := d.Intern(ProducedNull()); id != NullID {
		t.Fatalf("ProducedNull interned to %d", id)
	}
}

func TestDictInternRow(t *testing.T) {
	d := NewDict()
	row := []Value{StringValue("x"), NullValue(), IntValue(7)}
	ids := d.InternRow(row, nil)
	if len(ids) != 3 || ids[1] != NullID || ids[0] == ids[2] {
		t.Fatalf("InternRow = %v", ids)
	}
	// Reuses the destination buffer when it fits.
	again := d.InternRow(row[:2], ids)
	if &again[0] != &ids[0] {
		t.Fatalf("InternRow did not reuse the destination buffer")
	}
}

func TestDictConcurrentInterning(t *testing.T) {
	d := NewDict()
	const goroutines = 16
	const distinct = 200
	got := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, distinct)
			for i := 0; i < distinct; i++ {
				// Every goroutine interns the same values, in different
				// orders, racing on first sight.
				k := (i + g*7) % distinct
				ids[k] = d.Intern(IntValue(int64(k)))
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	if d.Len() != distinct {
		t.Fatalf("Len = %d, want %d", d.Len(), distinct)
	}
	// All goroutines agree on every ID, and IDs are a permutation of
	// 1..distinct.
	seen := make(map[uint32]bool)
	for i := 0; i < distinct; i++ {
		id := got[0][i]
		for g := 1; g < goroutines; g++ {
			if got[g][i] != id {
				t.Fatalf("goroutines disagree on id of %d: %d vs %d", i, id, got[g][i])
			}
		}
		if id == NullID || id > distinct || seen[id] {
			t.Fatalf("id of %d = %d is not a fresh dense id", i, id)
		}
		seen[id] = true
		if v, ok := d.Value(id); !ok || !v.Equal(IntValue(int64(i))) {
			t.Fatalf("Value(%d) = %v, %v; want %d", id, v, ok, i)
		}
	}
}
