package table

import (
	"testing"

	"repro/internal/minhash"
)

// FuzzDictIntern pins the value dictionary's core contract under arbitrary
// inputs: interning is idempotent (same value, same ID), Lookup agrees with
// Intern without growing the dictionary, and the representative stored
// under an ID is Equal to every value interned there — including the
// deliberate Int/integral-Float collision of Value.Key.
func FuzzDictIntern(f *testing.F) {
	f.Add("berlin", int64(42), 42.0, true)
	f.Add("", int64(-1), 0.5, false)
	f.Add("⊥", int64(1<<62), -0.0, true)
	f.Add("x\x00y", int64(0), 1e300, false)
	f.Fuzz(func(t *testing.T, s string, i int64, fl float64, b bool) {
		d := NewDict()
		vals := []Value{StringValue(s), IntValue(i), FloatValue(fl), BoolValue(b), NullValue()}
		ids := make([]uint32, len(vals))
		for k, v := range vals {
			ids[k] = d.Intern(v)
			if v.IsNull() {
				if ids[k] != NullID {
					t.Fatalf("null interned to %d", ids[k])
				}
				continue
			}
			if ids[k] == NullID {
				t.Fatalf("non-null %v interned to NullID", v)
			}
		}
		sizeAfter := d.Len()
		for k, v := range vals {
			// Re-interning and lookup both return the first ID and never grow.
			if again := d.Intern(v); again != ids[k] {
				t.Fatalf("re-intern of %v: %d then %d", v, ids[k], again)
			}
			got, ok := d.Lookup(v)
			if !ok || got != ids[k] {
				t.Fatalf("Lookup(%v) = %d,%v want %d", v, got, ok, ids[k])
			}
			rep, ok := d.Value(ids[k])
			if !ok || !rep.Equal(v) {
				t.Fatalf("Value(%d) = %v (ok=%v), not Equal to %v", ids[k], rep, ok, v)
			}
		}
		if d.Len() != sizeAfter {
			t.Fatalf("lookups grew the dictionary: %d -> %d", sizeAfter, d.Len())
		}
		// Two values share an ID exactly when Equal: the Int/integral-Float
		// collision must hold both ways.
		if fl == float64(int64(fl)) && i == int64(fl) {
			if ids[1] != ids[2] {
				t.Fatalf("Int %d and integral Float %v interned apart: %d vs %d", i, fl, ids[1], ids[2])
			}
		}
	})
}

// FuzzTokenDictIntern pins the token dictionary round trip: Intern/Lookup
// agree, Token inverts Intern exactly, the cached fingerprint equals the
// direct FNV-1a hash, and batch interning (InternAll) matches one-by-one
// interning.
func FuzzTokenDictIntern(f *testing.F) {
	f.Add("berlin", "new york")
	f.Add("", "a")
	f.Add("tok tok", "tok tok")
	f.Add("\xff\xfe", "日本")
	f.Fuzz(func(t *testing.T, tok1, tok2 string) {
		d := NewTokenDict()
		id1 := d.Intern(tok1)
		if id1 == 0 {
			t.Fatal("Intern returned the unknown-token sentinel")
		}
		if got := d.Lookup(tok1); got != id1 {
			t.Fatalf("Lookup(%q) = %d, want %d", tok1, got, id1)
		}
		if back, ok := d.Token(id1); !ok || back != tok1 {
			t.Fatalf("Token(%d) = %q,%v want %q", id1, back, ok, tok1)
		}
		if got, want := d.Fingerprint(id1), minhash.Fingerprint(tok1); got != want {
			t.Fatalf("cached fingerprint %x != direct hash %x", got, want)
		}
		id2 := d.Intern(tok2)
		if (id1 == id2) != (tok1 == tok2) {
			t.Fatalf("ID equality (%d,%d) disagrees with token equality (%q,%q)", id1, id2, tok1, tok2)
		}
		// Batch interning into a fresh dictionary assigns the same contents.
		d2 := NewTokenDict()
		ids := d2.InternAll([]string{tok1, tok2, tok1}, nil)
		if ids[0] != ids[2] {
			t.Fatalf("InternAll assigned %q two IDs: %d, %d", tok1, ids[0], ids[2])
		}
		if (ids[0] == ids[1]) != (tok1 == tok2) {
			t.Fatal("InternAll ID equality disagrees with token equality")
		}
		for k, tok := range []string{tok1, tok2} {
			if back, ok := d2.Token(ids[k]); !ok || back != tok {
				t.Fatalf("batch Token(%d) = %q,%v want %q", ids[k], back, ok, tok)
			}
			if got, want := d2.Fingerprint(ids[k]), minhash.Fingerprint(tok); got != want {
				t.Fatalf("batch fingerprint %x != direct hash %x", got, want)
			}
		}
		if d.Len() != d2.Len() {
			t.Fatalf("batch and serial interning disagree on size: %d vs %d", d2.Len(), d.Len())
		}
	})
}
