package table

import "fmt"

// Filter returns a new table containing the rows for which keep returns
// true, preserving order. The rows are shared (not copied); use Clone
// first when mutation is intended.
func (t *Table) Filter(name string, keep func(row []Value) bool) *Table {
	out := New(name, t.Columns...)
	for _, row := range t.Rows {
		if keep(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// SelectByName projects the named columns, in the given order. Unknown
// names are errors.
func (t *Table) SelectByName(name string, columns ...string) (*Table, error) {
	idx := make([]int, len(columns))
	for i, c := range columns {
		j, ok := t.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("table %q: no column named %q", t.Name, c)
		}
		idx[i] = j
	}
	return t.Project(name, idx...)
}

// Head returns a new table with at most n leading rows (shared, not
// copied).
func (t *Table) Head(n int) *Table {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	if n < 0 {
		n = 0
	}
	out := New(t.Name, t.Columns...)
	out.Rows = append(out.Rows, t.Rows[:n]...)
	return out
}

// DropNullRows returns a new table without rows that are null in any of
// the given columns (all columns when none are given) — the
// complete-case view analysts take before correlation.
func (t *Table) DropNullRows(cols ...int) (*Table, error) {
	if len(cols) == 0 {
		cols = make([]int, t.NumCols())
		for i := range cols {
			cols[i] = i
		}
	}
	for _, c := range cols {
		if c < 0 || c >= t.NumCols() {
			return nil, fmt.Errorf("table %q: column %d out of range", t.Name, c)
		}
	}
	return t.Filter(t.Name, func(row []Value) bool {
		for _, c := range cols {
			if row[c].IsNull() {
				return false
			}
		}
		return true
	}), nil
}

// RenameColumn renames the first column with header from to to.
func (t *Table) RenameColumn(from, to string) error {
	i, ok := t.ColumnIndex(from)
	if !ok {
		return fmt.Errorf("table %q: no column named %q", t.Name, from)
	}
	t.Columns[i] = to
	return nil
}

// AppendRows appends all rows of other, which must have the same arity.
// Headers are not checked: integration decides column correspondence, not
// this helper.
func (t *Table) AppendRows(other *Table) error {
	if other.NumCols() != t.NumCols() {
		return fmt.Errorf("table %q: cannot append rows of %q with %d columns (want %d)",
			t.Name, other.Name, other.NumCols(), t.NumCols())
	}
	t.Rows = append(t.Rows, other.Rows...)
	return nil
}
