package table

import "testing"

func TestFilter(t *testing.T) {
	tb := sample()
	got := tb.Filter("rich", func(row []Value) bool {
		return row[2].IntVal() >= 78
	})
	if got.NumRows() != 2 || got.Name != "rich" {
		t.Errorf("Filter = %d rows", got.NumRows())
	}
	none := tb.Filter("none", func([]Value) bool { return false })
	if none.NumRows() != 0 {
		t.Error("Filter false must be empty")
	}
}

func TestSelectByName(t *testing.T) {
	tb := sample()
	got, err := tb.SelectByName("sel", "Rate", "City")
	if err != nil {
		t.Fatal(err)
	}
	if got.Columns[0] != "Rate" || got.Columns[1] != "City" {
		t.Errorf("SelectByName headers = %v", got.Columns)
	}
	if got.Cell(0, 1).Str() != "Berlin" {
		t.Error("SelectByName cells wrong")
	}
	if _, err := tb.SelectByName("bad", "nope"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestHead(t *testing.T) {
	tb := sample()
	if got := tb.Head(2); got.NumRows() != 2 {
		t.Errorf("Head(2) = %d rows", got.NumRows())
	}
	if got := tb.Head(99); got.NumRows() != 3 {
		t.Error("Head beyond size must clamp")
	}
	if got := tb.Head(-1); got.NumRows() != 0 {
		t.Error("negative Head must be empty")
	}
}

func TestDropNullRows(t *testing.T) {
	tb := New("t", "a", "b")
	tb.MustAddRow(IntValue(1), NullValue())
	tb.MustAddRow(IntValue(2), IntValue(3))
	tb.MustAddRow(ProducedNull(), IntValue(4))
	all, err := tb.DropNullRows()
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 1 {
		t.Errorf("DropNullRows() = %d rows, want 1", all.NumRows())
	}
	colA, err := tb.DropNullRows(0)
	if err != nil {
		t.Fatal(err)
	}
	if colA.NumRows() != 2 {
		t.Errorf("DropNullRows(0) = %d rows, want 2", colA.NumRows())
	}
	if _, err := tb.DropNullRows(9); err == nil {
		t.Error("out of range must error")
	}
}

func TestRenameColumn(t *testing.T) {
	tb := sample()
	if err := tb.RenameColumn("Rate", "Vaccination"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.ColumnIndex("Vaccination"); !ok {
		t.Error("rename did not apply")
	}
	if err := tb.RenameColumn("nope", "x"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestAppendRows(t *testing.T) {
	a := sample()
	b := sample()
	if err := a.AppendRows(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 6 {
		t.Errorf("AppendRows = %d rows", a.NumRows())
	}
	short := New("s", "x")
	if err := a.AppendRows(short); err == nil {
		t.Error("arity mismatch must error")
	}
}
