package table

import (
	"fmt"

	"repro/internal/minhash"
)

// Persistence surface of the interners. Both dictionaries are append-only
// ID-order logs at heart (vals[id-1], toks[id-1]), so their snapshot form
// is just that log: re-interning it sequentially reproduces every ID
// assignment — and, for TokenDict, every cached fingerprint — exactly.

// Snapshot returns a copy of the interned values in ID order: element i was
// interned under ID i+1. Interning the snapshot into a fresh Dict in order
// reproduces the dictionary, including every ID.
func (d *Dict) Snapshot() []Value {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Value(nil), d.vals...)
}

// Snapshot returns a copy of the interned tokens in ID order: element i was
// interned under ID i+1. Interning the snapshot into a fresh TokenDict in
// order reproduces the dictionary, including every ID and fingerprint.
func (d *TokenDict) Snapshot() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.toks...)
}

// RestoreDict rebuilds a dictionary from a Snapshot: element i is
// registered under ID i+1, exactly as sequential re-interning would assign.
// Only the ID-order log is materialized here; the kind maps that answer
// value→ID are built lazily on first use (see Dict.ensureMaps), so restoring
// a lake that only serves reads never pays for them. RestoreDict rejects
// null entries — a null can never be interned, so its presence means the
// log is not a dictionary snapshot.
//
// RestoreDict takes ownership of vals: the caller must not reuse or mutate
// the slice afterwards. (Restoring a multi-megabyte lake dictionary is on
// the warm-restart critical path; a defensive copy here is pure cost.)
func RestoreDict(vals []Value) (*Dict, error) {
	for i, v := range vals {
		switch v.kind {
		case String, Int, Float, Bool:
		default:
			return nil, fmt.Errorf("table: restore: null dictionary value at ID %d", i+1)
		}
	}
	d := &Dict{vals: vals}
	d.mapsStale.Store(true)
	return d, nil
}

// RestoreTokenDict rebuilds a token dictionary from a Snapshot: element i
// is registered under ID i+1 with its fingerprint recomputed (fingerprints
// feed domain reconstruction immediately, so they are not deferred). The
// token→ID map is built lazily on first use, like Dict's kind maps.
//
// Like RestoreDict, it takes ownership of toks: the caller must not mutate
// the slice afterwards.
func RestoreTokenDict(toks []string) (*TokenDict, error) {
	d := &TokenDict{
		toks: toks,
		fps:  make([]uint64, len(toks)),
	}
	for i, tok := range toks {
		d.fps[i] = minhash.Fingerprint(tok)
	}
	d.idsStale.Store(true)
	return d, nil
}
