package table

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an ordered collection of rows over named columns. Column names in
// data lakes are unreliable: they may be empty, duplicated, or meaningless,
// and no DIALITE component other than the header-baseline schema matcher
// trusts them. Rows are slices of Value with length equal to the number of
// columns.
type Table struct {
	// Name identifies the table within a lake (usually the file name).
	Name string
	// Columns holds the (possibly unreliable) column headers.
	Columns []string
	// Rows holds the data; each row has exactly len(Columns) cells.
	Rows [][]Value
}

// New returns an empty table with the given name and column headers.
func New(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: append([]string(nil), columns...)}
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// AddRow appends a row, which must have exactly NumCols cells.
func (t *Table) AddRow(cells ...Value) error {
	if len(cells) != t.NumCols() {
		return fmt.Errorf("table %q: row has %d cells, want %d", t.Name, len(cells), t.NumCols())
	}
	t.Rows = append(t.Rows, append([]Value(nil), cells...))
	return nil
}

// MustAddRow is AddRow that panics on arity mismatch. It is intended for
// fixtures and tests where the arity is statically known.
func (t *Table) MustAddRow(cells ...Value) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// AddStringRow parses each raw cell with Parse and appends the row.
func (t *Table) AddStringRow(raw ...string) error {
	if len(raw) != t.NumCols() {
		return fmt.Errorf("table %q: row has %d cells, want %d", t.Name, len(raw), t.NumCols())
	}
	row := make([]Value, len(raw))
	for i, s := range raw {
		row[i] = Parse(s)
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// ColumnIndex returns the index of the first column with the given header.
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// Cell returns the value at row r, column c. It panics if out of range, as
// slice indexing would.
func (t *Table) Cell(r, c int) Value { return t.Rows[r][c] }

// Column returns a copy of column c's cells in row order.
func (t *Table) Column(c int) []Value {
	out := make([]Value, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[c]
	}
	return out
}

// ColumnByName returns the cells of the first column with the given header.
func (t *Table) ColumnByName(name string) ([]Value, error) {
	i, ok := t.ColumnIndex(name)
	if !ok {
		return nil, fmt.Errorf("table %q: no column named %q", t.Name, name)
	}
	return t.Column(i), nil
}

// DistinctStrings returns the set of distinct non-null cell renderings of
// column c, in first-seen order. It is the domain extraction used by the
// joinable-search indexes (LSH Ensemble, JOSIE), which operate on string
// domains as the paper's systems do.
func (t *Table) DistinctStrings(c int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, row := range t.Rows {
		v := row[c]
		if v.IsNull() {
			continue
		}
		s := v.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Project returns a new table with the given column indices, in order.
func (t *Table) Project(name string, cols ...int) (*Table, error) {
	for _, c := range cols {
		if c < 0 || c >= t.NumCols() {
			return nil, fmt.Errorf("table %q: project column %d out of range [0,%d)", t.Name, c, t.NumCols())
		}
	}
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = t.Columns[c]
	}
	out := New(name, headers...)
	for _, row := range t.Rows {
		nr := make([]Value, len(cols))
		for i, c := range cols {
			nr[i] = row[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Name, t.Columns...)
	out.Rows = make([][]Value, len(t.Rows))
	for i, row := range t.Rows {
		out.Rows[i] = append([]Value(nil), row...)
	}
	return out
}

// RowKey returns a canonical key for row r, suitable for set semantics.
func (t *Table) RowKey(r int) string { return RowKey(t.Rows[r]) }

// RowKey returns a canonical key for a row of values.
func RowKey(row []Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// CompareRows orders rows lexicographically by Value.Compare.
func CompareRows(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// SortRows sorts rows into the canonical order. Ties are stable.
func (t *Table) SortRows() {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		return CompareRows(t.Rows[i], t.Rows[j]) < 0
	})
}

// Equal reports whether two tables have identical headers and identical rows
// in identical order (names are ignored).
func (t *Table) Equal(o *Table) bool {
	if t.NumCols() != o.NumCols() || t.NumRows() != o.NumRows() {
		return false
	}
	for i := range t.Columns {
		if t.Columns[i] != o.Columns[i] {
			return false
		}
	}
	for i := range t.Rows {
		for j := range t.Rows[i] {
			if !t.Rows[i][j].Equal(o.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// EqualUnordered reports whether two tables contain the same bag of rows
// under the same headers, ignoring row order.
func (t *Table) EqualUnordered(o *Table) bool {
	if t.NumCols() != o.NumCols() || t.NumRows() != o.NumRows() {
		return false
	}
	for i := range t.Columns {
		if t.Columns[i] != o.Columns[i] {
			return false
		}
	}
	a := t.Clone()
	b := o.Clone()
	a.SortRows()
	b.SortRows()
	return a.Equal(b)
}

// DedupRows removes duplicate rows (set semantics), keeping first
// occurrences in order, and returns the receiver for chaining.
func (t *Table) DedupRows() *Table {
	seen := make(map[string]bool, len(t.Rows))
	out := t.Rows[:0]
	for _, row := range t.Rows {
		k := RowKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	t.Rows = out
	return t
}

// NullFraction reports the fraction of cells that are null (either kind).
func (t *Table) NullFraction() float64 {
	if t.NumRows() == 0 || t.NumCols() == 0 {
		return 0
	}
	nulls := 0
	for _, row := range t.Rows {
		for _, v := range row {
			if v.IsNull() {
				nulls++
			}
		}
	}
	return float64(nulls) / float64(t.NumRows()*t.NumCols())
}

// String renders the table as an aligned ASCII grid, matching how the
// paper's figures present tables.
func (t *Table) String() string {
	widths := make([]int, t.NumCols())
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if n := len([]rune(s)); n > widths[c] {
				widths[c] = n
			}
		}
	}
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "-- %s (%d rows) --\n", t.Name, t.NumRows())
	}
	writeRow := func(fields []string) {
		for c, f := range fields {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			for i := len([]rune(f)); i < widths[c]; i++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
