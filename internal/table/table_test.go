package table

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("t1", "Country", "City", "Rate")
	t.MustAddRow(StringValue("Germany"), StringValue("Berlin"), IntValue(63))
	t.MustAddRow(StringValue("England"), StringValue("Manchester"), IntValue(78))
	t.MustAddRow(StringValue("Spain"), StringValue("Barcelona"), IntValue(82))
	return t
}

func TestNewAndDims(t *testing.T) {
	tb := sample()
	if tb.NumRows() != 3 || tb.NumCols() != 3 {
		t.Fatalf("dims = %dx%d, want 3x3", tb.NumRows(), tb.NumCols())
	}
}

func TestAddRowArity(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.AddRow(IntValue(1)); err == nil {
		t.Error("AddRow with wrong arity must error")
	}
	if err := tb.AddRow(IntValue(1), IntValue(2)); err != nil {
		t.Errorf("AddRow: %v", err)
	}
}

func TestMustAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow must panic on arity mismatch")
		}
	}()
	New("x", "a").MustAddRow(IntValue(1), IntValue(2))
}

func TestAddStringRow(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.AddStringRow("42", "Berlin"); err != nil {
		t.Fatal(err)
	}
	if tb.Cell(0, 0).Kind() != Int || tb.Cell(0, 1).Kind() != String {
		t.Error("AddStringRow did not type-infer")
	}
	if err := tb.AddStringRow("only-one"); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestColumnIndexAndAccess(t *testing.T) {
	tb := sample()
	i, ok := tb.ColumnIndex("City")
	if !ok || i != 1 {
		t.Fatalf("ColumnIndex(City) = %d,%v", i, ok)
	}
	if _, ok := tb.ColumnIndex("missing"); ok {
		t.Error("ColumnIndex(missing) should fail")
	}
	col := tb.Column(1)
	if len(col) != 3 || col[0].Str() != "Berlin" {
		t.Errorf("Column(1) = %v", col)
	}
	byName, err := tb.ColumnByName("Country")
	if err != nil || byName[2].Str() != "Spain" {
		t.Errorf("ColumnByName = %v, %v", byName, err)
	}
	if _, err := tb.ColumnByName("nope"); err == nil {
		t.Error("ColumnByName(nope) should error")
	}
}

func TestDistinctStrings(t *testing.T) {
	tb := New("x", "c")
	tb.MustAddRow(StringValue("a"))
	tb.MustAddRow(StringValue("b"))
	tb.MustAddRow(StringValue("a"))
	tb.MustAddRow(NullValue())
	tb.MustAddRow(IntValue(7))
	got := tb.DistinctStrings(0)
	want := []string{"a", "b", "7"}
	if len(got) != len(want) {
		t.Fatalf("DistinctStrings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DistinctStrings[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestProject(t *testing.T) {
	tb := sample()
	p, err := tb.Project("p", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Columns[0] != "Rate" || p.Columns[1] != "Country" {
		t.Errorf("Project headers = %v", p.Columns)
	}
	if !p.Cell(0, 0).Equal(IntValue(63)) || p.Cell(0, 1).Str() != "Germany" {
		t.Error("Project cells wrong")
	}
	if _, err := tb.Project("bad", 5); err == nil {
		t.Error("Project out of range must error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := sample()
	cp := tb.Clone()
	cp.Rows[0][0] = StringValue("CHANGED")
	cp.Columns[0] = "CHANGED"
	if tb.Rows[0][0].Str() == "CHANGED" || tb.Columns[0] == "CHANGED" {
		t.Error("Clone is shallow")
	}
	if !tb.EqualUnordered(sample()) {
		t.Error("original mutated")
	}
}

func TestEqualAndUnordered(t *testing.T) {
	a := sample()
	b := sample()
	if !a.Equal(b) {
		t.Error("identical tables must be Equal")
	}
	// Swap rows: Equal fails, EqualUnordered holds.
	b.Rows[0], b.Rows[1] = b.Rows[1], b.Rows[0]
	if a.Equal(b) {
		t.Error("row order must matter for Equal")
	}
	if !a.EqualUnordered(b) {
		t.Error("EqualUnordered must ignore row order")
	}
	// Different header fails both.
	c := sample()
	c.Columns[2] = "Other"
	if a.Equal(c) || a.EqualUnordered(c) {
		t.Error("headers must matter")
	}
	// Different cell fails.
	d := sample()
	d.Rows[2][2] = IntValue(99)
	if a.Equal(d) || a.EqualUnordered(d) {
		t.Error("cells must matter")
	}
}

func TestSortRowsCanonical(t *testing.T) {
	tb := New("x", "v")
	tb.MustAddRow(StringValue("z"))
	tb.MustAddRow(NullValue())
	tb.MustAddRow(IntValue(5))
	tb.MustAddRow(BoolValue(true))
	tb.SortRows()
	kinds := []Kind{Null, Bool, Int, String}
	for i, k := range kinds {
		if tb.Rows[i][0].Kind() != k {
			t.Errorf("sorted row %d kind = %v, want %v", i, tb.Rows[i][0].Kind(), k)
		}
	}
}

func TestDedupRows(t *testing.T) {
	tb := New("x", "a", "b")
	tb.MustAddRow(IntValue(1), StringValue("x"))
	tb.MustAddRow(IntValue(1), StringValue("x"))
	tb.MustAddRow(FloatValue(1), StringValue("x")) // numerically equal -> same key
	tb.MustAddRow(IntValue(2), StringValue("x"))
	tb.DedupRows()
	if tb.NumRows() != 2 {
		t.Errorf("DedupRows left %d rows, want 2:\n%s", tb.NumRows(), tb)
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	a := []Value{StringValue("ab"), StringValue("c")}
	b := []Value{StringValue("a"), StringValue("bc")}
	if RowKey(a) == RowKey(b) {
		t.Error("RowKey must not collide across cell boundaries")
	}
	n1 := []Value{NullValue(), StringValue("x")}
	n2 := []Value{ProducedNull(), StringValue("x")}
	if RowKey(n1) != RowKey(n2) {
		t.Error("null kinds must share a key (set semantics)")
	}
}

func TestCompareRows(t *testing.T) {
	a := []Value{IntValue(1), StringValue("a")}
	b := []Value{IntValue(1), StringValue("b")}
	if CompareRows(a, b) >= 0 || CompareRows(b, a) <= 0 || CompareRows(a, a) != 0 {
		t.Error("CompareRows ordering broken")
	}
	short := []Value{IntValue(1)}
	if CompareRows(short, a) >= 0 {
		t.Error("shorter row must sort first on prefix tie")
	}
}

func TestNullFraction(t *testing.T) {
	tb := New("x", "a", "b")
	tb.MustAddRow(NullValue(), IntValue(1))
	tb.MustAddRow(ProducedNull(), NullValue())
	got := tb.NullFraction()
	if got != 0.75 {
		t.Errorf("NullFraction = %v, want 0.75", got)
	}
	if New("e", "a").NullFraction() != 0 {
		t.Error("empty table NullFraction must be 0")
	}
}

func TestStringRendering(t *testing.T) {
	tb := sample()
	s := tb.String()
	if !strings.Contains(s, "t1 (3 rows)") {
		t.Errorf("render missing banner: %q", s)
	}
	if !strings.Contains(s, "Berlin") || !strings.Contains(s, "Country") {
		t.Errorf("render missing contents: %q", s)
	}
}
