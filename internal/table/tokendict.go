package table

import (
	"sync"
	"sync/atomic"

	"repro/internal/minhash"
)

// TokenDict interns normalized string tokens — the members of discovery
// value sets (tokenize.ValueSet output) — into dense uint32 token IDs, the
// integer token universe the discovery indexes (JOSIE postings, LSH
// Ensemble verification) are built on. It is the token-level sibling of
// Dict, which interns whole cell Values.
//
// IDs are dense and start at 1; 0 is the "unknown token" sentinel returned
// by Lookup for tokens never interned. The assignment order — and
// therefore the concrete IDs — depends on interning order, which is
// scheduling-dependent when tables are interned concurrently; nothing may
// depend on ID order, only on ID equality.
//
// Each token's 64-bit FNV-1a fingerprint (the hash MinHash signatures are
// computed from, see minhash.Fingerprints) is computed once at interning
// and cached, so query-time signing of lake-vocabulary tokens never
// re-hashes the string.
//
// A TokenDict is safe for concurrent use. Like Dict, it holds at most
// ~4 billion distinct tokens (IDs are uint32, 0 reserved); interning past
// that limit panics.
type TokenDict struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	toks []string // toks[id-1] is the token interned under id
	fps  []uint64 // fps[id-1] is the token's 64-bit FNV-1a fingerprint
	// idsStale is set by RestoreTokenDict, which defers building the ids map
	// until a caller needs token→ID resolution; ID-based reads (Token,
	// Fingerprint(s), Len) work straight off the slices. Mirrors
	// Dict.mapsStale.
	idsStale atomic.Bool
}

// ensureIDs builds the deferred ids map of a restored token dictionary
// before the first token→ID resolution. Callers invoke it before taking
// either lock. The map is built in reverse so that if the log ever held
// duplicates, the earliest ID wins — the answer sequential interning gives.
func (d *TokenDict) ensureIDs() {
	if !d.idsStale.Load() {
		return
	}
	d.mu.Lock()
	if d.idsStale.Load() {
		d.ids = make(map[string]uint32, len(d.toks))
		for i := len(d.toks) - 1; i >= 0; i-- {
			d.ids[d.toks[i]] = uint32(i + 1)
		}
		d.idsStale.Store(false)
	}
	d.mu.Unlock()
}

// NewTokenDict returns an empty token dictionary.
func NewTokenDict() *TokenDict {
	return &TokenDict{ids: make(map[string]uint32)}
}

// Intern returns the ID of tok, assigning a fresh one on first sight.
func (d *TokenDict) Intern(tok string) uint32 {
	d.ensureIDs()
	d.mu.RLock()
	id := d.ids[tok]
	d.mu.RUnlock()
	if id != 0 {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id := d.ids[tok]; id != 0 {
		return id
	}
	if idCapacityExceeded(len(d.toks)) {
		panic("table: TokenDict full: more than ~4B distinct tokens (uint32 ID space exhausted)")
	}
	d.toks = append(d.toks, tok)
	d.fps = append(d.fps, minhash.Fingerprint(tok))
	id = uint32(len(d.toks))
	d.ids[tok] = id
	return id
}

// InternAll interns every token of toks into dst, which is grown as needed
// and returned. The read lock is taken once for the whole batch; the write
// lock only when the batch carries tokens never seen before, and the FNV
// hashing of those new tokens happens outside it, so concurrent workers
// interning disjoint vocabularies (lake extraction) serialize only on the
// map/slice inserts.
func (d *TokenDict) InternAll(toks []string, dst []uint32) []uint32 {
	if cap(dst) < len(toks) {
		dst = make([]uint32, len(toks))
	}
	dst = dst[:len(toks)]
	var missed []int
	d.ensureIDs()
	d.mu.RLock()
	for i, tok := range toks {
		if dst[i] = d.ids[tok]; dst[i] == 0 {
			missed = append(missed, i)
		}
	}
	d.mu.RUnlock()
	if len(missed) == 0 {
		return dst
	}
	missedFps := make([]uint64, len(missed))
	for j, i := range missed {
		missedFps[j] = minhash.Fingerprint(toks[i])
	}
	d.mu.Lock()
	for j, i := range missed {
		tok := toks[i]
		// Another worker may have interned tok since the read pass.
		if dst[i] = d.ids[tok]; dst[i] != 0 {
			continue
		}
		if idCapacityExceeded(len(d.toks)) {
			d.mu.Unlock()
			panic("table: TokenDict full: more than ~4B distinct tokens (uint32 ID space exhausted)")
		}
		d.toks = append(d.toks, tok)
		d.fps = append(d.fps, missedFps[j])
		dst[i] = uint32(len(d.toks))
		d.ids[tok] = dst[i]
	}
	d.mu.Unlock()
	return dst
}

// Lookup returns the ID of tok without interning it; 0 means tok has never
// been interned. Query-side code uses Lookup so transient query tokens do
// not grow the lake dictionary.
func (d *TokenDict) Lookup(tok string) uint32 {
	d.ensureIDs()
	d.mu.RLock()
	id := d.ids[tok]
	d.mu.RUnlock()
	return id
}

// Token returns the token string interned under id and whether the ID is
// known. ID 0 is never known.
func (d *TokenDict) Token(id uint32) (string, bool) {
	if id == 0 {
		return "", false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int64(id) > int64(len(d.toks)) {
		return "", false
	}
	return d.toks[id-1], true
}

// Fingerprint returns the cached 64-bit FNV-1a fingerprint of the token
// interned under id. It panics on unknown IDs: fingerprints exist exactly
// for interned tokens.
func (d *TokenDict) Fingerprint(id uint32) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.fps[id-1]
}

// Fingerprints fills dst (reused when it has capacity, discarding its
// previous contents) with the cached fingerprints of ids, in ids order,
// and returns it. All IDs must be interned.
func (d *TokenDict) Fingerprints(ids []uint32, dst []uint64) []uint64 {
	if cap(dst) < len(ids) {
		dst = make([]uint64, 0, len(ids))
	}
	dst = dst[:0]
	d.mu.RLock()
	for _, id := range ids {
		dst = append(dst, d.fps[id-1])
	}
	d.mu.RUnlock()
	return dst
}

// Len reports how many distinct tokens have been interned.
func (d *TokenDict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.toks)
}
