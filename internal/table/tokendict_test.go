package table

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"
)

func TestTokenDictInternLookup(t *testing.T) {
	d := NewTokenDict()
	if d.Len() != 0 {
		t.Fatal("new dict not empty")
	}
	a := d.Intern("berlin")
	b := d.Intern("boston")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids: a=%d b=%d", a, b)
	}
	if d.Intern("berlin") != a {
		t.Error("re-intern must return the same ID")
	}
	if d.Lookup("berlin") != a {
		t.Error("Lookup must find interned token")
	}
	if d.Lookup("never-seen") != 0 {
		t.Error("Lookup of unknown token must be 0")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if tok, ok := d.Token(a); !ok || tok != "berlin" {
		t.Errorf("Token(%d) = %q,%v", a, tok, ok)
	}
	if _, ok := d.Token(0); ok {
		t.Error("Token(0) must be unknown")
	}
	if _, ok := d.Token(99); ok {
		t.Error("Token of unassigned ID must be unknown")
	}
}

func TestTokenDictInternAll(t *testing.T) {
	d := NewTokenDict()
	first := d.InternAll([]string{"x", "y", "x"}, nil)
	if len(first) != 3 || first[0] != first[2] || first[0] == first[1] {
		t.Fatalf("InternAll ids = %v", first)
	}
	yID := first[1]
	again := d.InternAll([]string{"y", "z"}, first[:0])
	if again[0] != yID {
		t.Error("InternAll must reuse existing IDs")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

// TestTokenDictFingerprintMatchesFNV pins the inline FNV-1a loop to
// hash/fnv — and therefore to minhash.Fingerprints, which MinHash
// signatures are computed from. If this drifts, cached query fingerprints
// would disagree with index signatures.
func TestTokenDictFingerprintMatchesFNV(t *testing.T) {
	d := NewTokenDict()
	for _, s := range []string{"", "a", "berlin", "new delhi", "v00042", "日本"} {
		id := d.Intern(s)
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := d.Fingerprint(id), h.Sum64(); got != want {
			t.Errorf("fingerprint(%q) = %#x, want %#x", s, got, want)
		}
	}
	ids := d.InternAll([]string{"berlin", "a"}, nil)
	fps := d.Fingerprints(ids, nil)
	if fps[0] != d.Fingerprint(ids[0]) || fps[1] != d.Fingerprint(ids[1]) {
		t.Error("Fingerprints must gather per-ID fingerprints in order")
	}
}

func TestTokenDictConcurrentIntern(t *testing.T) {
	d := NewTokenDict()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint32
			for i := 0; i < 200; i++ {
				tok := fmt.Sprintf("tok%03d", i)
				if d.Intern(tok) != d.Lookup(tok) {
					t.Errorf("worker %d: Intern/Lookup disagree on %s", w, tok)
					return
				}
				buf = d.InternAll([]string{tok, fmt.Sprintf("extra%03d", i)}, buf)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 400 {
		t.Errorf("Len = %d, want 400", d.Len())
	}
}

// TestIDCapacityGuard exercises the shared overflow predicate; actually
// interning 4B values is infeasible in a unit test, so the guard condition
// is pinned directly.
func TestIDCapacityGuard(t *testing.T) {
	if idCapacityExceeded(0) || idCapacityExceeded(1<<20) {
		t.Error("small dictionaries must not trip the guard")
	}
	if !idCapacityExceeded(math.MaxUint32) {
		t.Error("a full uint32 ID space must trip the guard")
	}
	if idCapacityExceeded(math.MaxUint32 - 1) {
		t.Error("the last assignable ID must still be allowed")
	}
}
