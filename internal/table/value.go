// Package table implements the typed in-memory table engine that underpins
// DIALITE. It plays the role pandas plays in the paper's Python prototype:
// tables are ordered collections of rows over named (possibly unreliable or
// empty) column headers, and cells are typed values.
//
// Two kinds of nulls are distinguished, following ALITE's terminology:
//
//   - a missing null (rendered "±") is a null present in the input data;
//   - a produced null (rendered "⊥") is introduced by an integration
//     operator (outer union, outer join, full disjunction) to pad tuples.
//
// Both kinds behave identically for join and subsumption semantics (nulls
// never join and are subsumed by any value); the distinction is preserved so
// that integration output can be displayed and audited exactly as in the
// paper's figures.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The value kinds. The zero value of Value has kind Null, so a freshly
// allocated row is all missing nulls.
const (
	Null  Kind = iota // missing null, present in source data ("±")
	PNull             // produced null, introduced by integration ("⊥")
	String
	Int
	Float
	Bool
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case PNull:
		return "pnull"
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single typed cell. The zero Value is a missing null.
// Values are immutable; all methods are value receivers.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// NullValue returns a missing null (the "±" of the paper's figures).
func NullValue() Value { return Value{kind: Null} }

// ProducedNull returns a produced null (the "⊥" of the paper's figures).
func ProducedNull() Value { return Value{kind: PNull} }

// StringValue returns a string cell.
func StringValue(s string) Value { return Value{kind: String, s: s} }

// IntValue returns an integer cell.
func IntValue(i int64) Value { return Value{kind: Int, i: i} }

// FloatValue returns a floating-point cell.
func FloatValue(f float64) Value { return Value{kind: Float, f: f} }

// BoolValue returns a boolean cell.
func BoolValue(b bool) Value { return Value{kind: Bool, b: b} }

// nullTokens are raw CSV spellings interpreted as missing nulls.
var nullTokens = map[string]bool{
	"":     true,
	"null": true,
	"na":   true,
	"n/a":  true,
	"nan":  true,
	"none": true,
	"±":    true,
	"+-":   true,
}

// Parse converts a raw string (e.g. a CSV field) into a typed Value using
// type inference: null spellings, then integer, float, boolean, and finally
// string. Leading/trailing whitespace is ignored for inference but preserved
// in string values after trimming (open data is noisy; we canonicalize the
// frame, not the content).
func Parse(raw string) Value {
	t := strings.TrimSpace(raw)
	if nullTokens[strings.ToLower(t)] {
		return NullValue()
	}
	if t == "⊥" {
		return ProducedNull()
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return IntValue(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return FloatValue(f)
	}
	switch strings.ToLower(t) {
	case "true":
		return BoolValue(true)
	case "false":
		return BoolValue(false)
	}
	return StringValue(t)
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is a null of either kind.
func (v Value) IsNull() bool { return v.kind == Null || v.kind == PNull }

// IsProduced reports whether the value is a produced null.
func (v Value) IsProduced() bool { return v.kind == PNull }

// Str returns the underlying string; it is only meaningful for String kind.
func (v Value) Str() string { return v.s }

// IntVal returns the underlying int64; only meaningful for Int kind.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the underlying float64; only meaningful for Float kind.
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the underlying bool; only meaningful for Bool kind.
func (v Value) BoolVal() bool { return v.b }

// AsFloat converts numeric values to float64. The second result reports
// whether the value was numeric (Int or Float).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case Int:
		return float64(v.i), true
	case Float:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value the way the paper's figures do: "±" for missing
// nulls and "⊥" for produced nulls.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "±"
	case PNull:
		return "⊥"
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Key returns a canonical string key under which equal values (per Equal)
// collide and unequal values do not. Both null kinds share one key because
// they are indistinguishable to join and subsumption semantics.
func (v Value) Key() string {
	switch v.kind {
	case Null, PNull:
		return "\x00N"
	case String:
		return "\x01" + v.s
	case Int:
		return "\x02" + strconv.FormatInt(v.i, 10)
	case Float:
		// Integral floats collide with ints so that CSV re-parsing noise
		// (e.g. "82" vs "82.0") does not break joins.
		if v.f == float64(int64(v.f)) {
			return "\x02" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x03" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.b {
			return "\x04T"
		}
		return "\x04F"
	default:
		return "\x05?"
	}
}

// intRepr reports whether the numeric value is exactly representable as an
// int64 — Int kind, or an integral Float — and that representation. The
// integrality test is the same expression Key uses, so intRepr-equality is
// exactly Key collision for int-like numerics.
func (v Value) intRepr() (int64, bool) {
	switch v.kind {
	case Int:
		return v.i, true
	case Float:
		if v.f == float64(int64(v.f)) {
			return int64(v.f), true
		}
	}
	return 0, false
}

// Equal reports value equality under join semantics: both-null is equal
// (regardless of null kind), numeric values compare across Int/Float, and
// otherwise kind and payload must agree. Note that under SQL semantics
// null != null; DIALITE's integration layer never *joins* on nulls (callers
// check IsNull first) but needs deterministic tuple equality for set
// operations, which this provides.
//
// Equal agrees exactly with Key collision (and therefore with Dict ID
// equality): int-like numerics compare as exact int64s — so Int(2^53+1)
// does not equal Float(2^53) despite rounding to the same float64 — and
// NaN equals NaN, keeping set semantics deterministic.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return v.IsNull() && o.IsNull()
	}
	if (v.kind == Int || v.kind == Float) && (o.kind == Int || o.kind == Float) {
		vi, vIsInt := v.intRepr()
		oi, oIsInt := o.intRepr()
		if vIsInt || oIsInt {
			return vIsInt && oIsInt && vi == oi
		}
		// Both non-integral floats; NaNs collide under Key, so they are
		// equal here too.
		if v.f != v.f || o.f != o.f {
			return v.f != v.f && o.f != o.f
		}
		return v.f == o.f
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case String:
		return v.s == o.s
	case Bool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders values deterministically: nulls first, then by kind class
// (bool < numeric < string), then by payload. It is used to canonicalize row
// order for unordered table comparison.
func (v Value) Compare(o Value) int {
	ck := func(x Value) int {
		switch x.kind {
		case Null, PNull:
			return 0
		case Bool:
			return 1
		case Int, Float:
			return 2
		default:
			return 3
		}
	}
	a, b := ck(v), ck(o)
	if a != b {
		if a < b {
			return -1
		}
		return 1
	}
	switch a {
	case 0:
		return 0
	case 1:
		if v.b == o.b {
			return 0
		}
		if !v.b {
			return -1
		}
		return 1
	case 2:
		// Int-like pairs compare as exact int64s, so values float64
		// rounding cannot distinguish (e.g. 2^53 vs 2^53+1) still order
		// consistently with Equal.
		vi, vIsInt := v.intRepr()
		oi, oIsInt := o.intRepr()
		if vIsInt && oIsInt {
			switch {
			case vi < oi:
				return -1
			case vi > oi:
				return 1
			default:
				return 0
			}
		}
		vf, _ := v.AsFloat()
		of, _ := o.AsFloat()
		// NaN orders before every other numeric (and equal to itself);
		// plain float comparison would report 0 against everything, making
		// canonical row order nondeterministic.
		vn, on := vf != vf, of != of
		if vn || on {
			switch {
			case vn && on:
				return 0
			case vn:
				return -1
			default:
				return 1
			}
		}
		switch {
		case vf < of:
			return -1
		case vf > of:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(v.s, o.s)
	}
}
