package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseNullSpellings(t *testing.T) {
	for _, raw := range []string{"", "  ", "null", "NULL", "na", "N/A", "NaN", "none", "±", "+-"} {
		v := Parse(raw)
		if v.Kind() != Null {
			t.Errorf("Parse(%q) kind = %v, want Null", raw, v.Kind())
		}
		if !v.IsNull() {
			t.Errorf("Parse(%q).IsNull() = false", raw)
		}
	}
}

func TestParseProducedNull(t *testing.T) {
	v := Parse("⊥")
	if v.Kind() != PNull || !v.IsNull() || !v.IsProduced() {
		t.Errorf("Parse(⊥) = kind %v produced %v", v.Kind(), v.IsProduced())
	}
}

func TestParseTypes(t *testing.T) {
	cases := []struct {
		raw  string
		kind Kind
	}{
		{"42", Int},
		{"-7", Int},
		{"3.14", Float},
		{"1e6", Float},
		{"true", Bool},
		{"False", Bool},
		{"Berlin", String},
		{"63%", String},
		{"1.4M", String},
	}
	for _, c := range cases {
		if got := Parse(c.raw).Kind(); got != c.kind {
			t.Errorf("Parse(%q) kind = %v, want %v", c.raw, got, c.kind)
		}
	}
}

func TestParseTrimsWhitespace(t *testing.T) {
	v := Parse("  42 ")
	if v.Kind() != Int || v.IntVal() != 42 {
		t.Errorf("Parse with spaces = %v (%v)", v, v.Kind())
	}
	s := Parse(" Berlin ")
	if s.Str() != "Berlin" {
		t.Errorf("Parse string trim = %q", s.Str())
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := StringValue("x"); v.Kind() != String || v.Str() != "x" {
		t.Error("StringValue broken")
	}
	if v := IntValue(9); v.Kind() != Int || v.IntVal() != 9 {
		t.Error("IntValue broken")
	}
	if v := FloatValue(2.5); v.Kind() != Float || v.FloatVal() != 2.5 {
		t.Error("FloatValue broken")
	}
	if v := BoolValue(true); v.Kind() != Bool || !v.BoolVal() {
		t.Error("BoolValue broken")
	}
	var zero Value
	if !zero.IsNull() || zero.Kind() != Null {
		t.Error("zero Value must be a missing null")
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := IntValue(3).AsFloat(); !ok || f != 3 {
		t.Errorf("IntValue.AsFloat = %v %v", f, ok)
	}
	if f, ok := FloatValue(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("FloatValue.AsFloat = %v %v", f, ok)
	}
	if _, ok := StringValue("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := NullValue().AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "±"},
		{ProducedNull(), "⊥"},
		{StringValue("Berlin"), "Berlin"},
		{IntValue(147), "147"},
		{FloatValue(0.16), "0.16"},
		{BoolValue(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqualSemantics(t *testing.T) {
	if !NullValue().Equal(ProducedNull()) {
		t.Error("nulls of both kinds must be Equal for set semantics")
	}
	if NullValue().Equal(StringValue("")) {
		t.Error("null must not equal empty string")
	}
	if !IntValue(82).Equal(FloatValue(82.0)) {
		t.Error("int 82 must equal float 82.0 (numeric cross-kind)")
	}
	if IntValue(82).Equal(FloatValue(82.5)) {
		t.Error("82 != 82.5")
	}
	if !StringValue("USA").Equal(StringValue("USA")) {
		t.Error("string equality broken")
	}
	if StringValue("USA").Equal(StringValue("usa")) {
		t.Error("string equality must be case sensitive at the value level")
	}
	if BoolValue(true).Equal(BoolValue(false)) {
		t.Error("bool equality broken")
	}
	if StringValue("1").Equal(IntValue(1)) {
		t.Error("string \"1\" must not equal int 1")
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	vals := []Value{
		NullValue(), ProducedNull(), StringValue("a"), StringValue("b"),
		StringValue(""), IntValue(1), IntValue(2), FloatValue(1),
		FloatValue(1.5), BoolValue(true), BoolValue(false),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := a.Equal(b)
			kq := a.Key() == b.Key()
			if eq != kq {
				t.Errorf("Equal(%v,%v)=%v but Key match=%v", a, b, eq, kq)
			}
		}
	}
}

func TestCompareOrderingProperties(t *testing.T) {
	vals := []Value{
		NullValue(), ProducedNull(), BoolValue(false), BoolValue(true),
		IntValue(-3), FloatValue(0.5), IntValue(2), StringValue("a"), StringValue("z"),
	}
	// Antisymmetry and reflexivity.
	for _, a := range vals {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(%v,%v) != 0", a, a)
		}
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("Compare antisymmetry broken for %v,%v", a, b)
			}
		}
	}
	// Transitivity over the fixed chain.
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[i].Compare(vals[j]) > 0 {
				t.Errorf("chain order broken at %v vs %v", vals[i], vals[j])
			}
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Rendering a parsed value and re-parsing it yields an Equal value.
	f := func(s string) bool {
		v := Parse(s)
		return Parse(v.String()).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseFloatRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := FloatValue(x)
		return Parse(v.String()).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Null: "null", PNull: "pnull", String: "string", Int: "int", Float: "float", Bool: "bool"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
