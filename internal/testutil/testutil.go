// Package testutil holds test-only helpers shared across packages. It is
// imported exclusively from _test.go files; nothing in it ships in a
// production binary.
package testutil

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// WaitGoroutinesSettle waits for the process goroutine count to return to
// the given baseline — the goleak-style leak check the cancellation tests
// run after aborting fan-outs and closures. It fails the test with a full
// stack dump when the count has not settled within five seconds.
func WaitGoroutinesSettle(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: baseline %d, now %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FreeLocalAddr reserves an ephemeral localhost TCP port and returns its
// address, for tests that must pass a listen address to code that binds it
// itself. The listener is closed before returning, so a different process
// could in principle grab the port in between — vastly less likely than a
// hardcoded port colliding.
func FreeLocalAddr(t testing.TB) string {
	t.Helper()
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
