package tokenize

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalize pins the canonicalization invariants everything downstream
// relies on: Normalize is idempotent (a normalized form re-normalizes to
// itself — the KB, the annotator, and the discovery indexes all assume
// normalized keys are fixed points), and its output alphabet is exactly
// lowercase letters and digits separated by single interior spaces.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"", " ", "J&J", "United  States", "Pfizer-BioNTech", "ümläut ÉÉ",
		"a\tb\nc", "42.5%", "  leading", "trailing  ", "__under__score__",
		"日本 Tokyo", "ẞharp", "\x00\xff invalid \xc3\x28 utf8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if again := Normalize(n); again != n {
			t.Fatalf("not idempotent: Normalize(%q) = %q, re-normalizes to %q", s, n, again)
		}
		if strings.HasPrefix(n, " ") || strings.HasSuffix(n, " ") {
			t.Fatalf("Normalize(%q) = %q has edge whitespace", s, n)
		}
		if strings.Contains(n, "  ") {
			t.Fatalf("Normalize(%q) = %q has a double space", s, n)
		}
		for _, r := range n {
			if r == ' ' {
				continue
			}
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				t.Fatalf("Normalize(%q) = %q contains %q", s, n, r)
			}
			if unicode.ToLower(r) != r {
				t.Fatalf("Normalize(%q) = %q is not lowercased at %q", s, n, r)
			}
		}
	})
}
