// Package tokenize provides the text normalization and tokenization
// primitives shared by the discovery indexes (LSH Ensemble, JOSIE, SANTOS)
// and the column-embedding and entity-resolution components. Open-data cell
// values are noisy; every consumer works over the same canonical token view
// so that the pipeline stages agree on what a "value" is.
package tokenize

import (
	"strings"
	"unicode"
)

// Normalize lowercases s, maps punctuation to spaces, and collapses runs of
// whitespace, yielding the canonical form used throughout discovery and ER.
// "J&J" normalizes to "j j", "United  States" to "united states". Runes are
// lowered one at a time (the same per-rune mapping strings.ToLower applies),
// so no intermediate lowered string is allocated on this hot path.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range s {
		r = unicode.ToLower(r)
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			lastSpace = false
			continue
		}
		if !lastSpace {
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Words splits s into normalized word tokens.
func Words(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// stopwords is a minimal English stopword list; discovery scoring drops
// these so that e.g. "rate of vaccination" and "vaccination rate" agree.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "in": true, "is": true,
	"it": true, "of": true, "on": true, "or": true, "per": true, "the": true,
	"to": true, "with": true,
}

// IsStopword reports whether the normalized token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentWords returns Words(s) with stopwords removed.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0]
	for _, w := range ws {
		if !IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// QGrams returns the q-grams of the normalized form of s, padded with '_'
// so that short strings still produce grams ("ab" with q=3 yields "__a",
// "_ab", "ab_", "b__"). Used by the character-level column embeddings and
// the ER similarity features.
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	n := Normalize(s)
	if n == "" {
		return nil
	}
	pad := strings.Repeat("_", q-1)
	padded := pad + n + pad
	runes := []rune(padded)
	if len(runes) < q {
		return nil
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// TokenSet returns the deduplicated normalized word tokens of all inputs,
// in first-seen order. It is the set view used by overlap search.
func TokenSet(values []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range values {
		for _, w := range Words(v) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// ValueSet normalizes each input as a whole value (not word-split) and
// deduplicates, in first-seen order. Joinable search over key-like columns
// uses whole-value sets: "new york" is one domain member, not two tokens.
func ValueSet(values []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range values {
		n := Normalize(v)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// Jaccard computes |a∩b| / |a∪b| over string sets (inputs may contain
// duplicates; they are deduplicated). Returns 0 for two empty sets.
func Jaccard(a, b []string) float64 {
	as := toSet(a)
	bs := toSet(b)
	if len(as) == 0 && len(bs) == 0 {
		return 0
	}
	inter := 0
	for x := range as {
		if bs[x] {
			inter++
		}
	}
	return float64(inter) / float64(len(as)+len(bs)-inter)
}

// Containment computes |a∩b| / |a| — the fraction of a's members found in
// b. This is the similarity LSH Ensemble indexes for joinable search.
// Returns 0 when a is empty.
func Containment(a, b []string) float64 {
	as := toSet(a)
	if len(as) == 0 {
		return 0
	}
	bs := toSet(b)
	inter := 0
	for x := range as {
		if bs[x] {
			inter++
		}
	}
	return float64(inter) / float64(len(as))
}

// Overlap computes |a∩b| over string sets.
func Overlap(a, b []string) int {
	as := toSet(a)
	bs := toSet(b)
	inter := 0
	for x := range as {
		if bs[x] {
			inter++
		}
	}
	return inter
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
