package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"J&J":                           "j j",
		"United  States":                "united states",
		"  Vaccination-Rate (1+ dose) ": "vaccination rate 1 dose",
		"":                              "",
		"---":                           "",
		"Berlin":                        "berlin",
		"CASES!!":                       "cases",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWords(t *testing.T) {
	got := Words("Total Cases per 100k")
	want := []string{"total", "cases", "per", "100k"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
	if Words("") != nil {
		t.Error("Words(\"\") must be nil")
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("rate of vaccination per 100k")
	want := []string{"rate", "vaccination", "100k"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("vaccine") {
		t.Error("stopword detection broken")
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 3)
	want := []string{"__a", "_ab", "ab_", "b__"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams = %v, want %v", got, want)
	}
	if QGrams("", 3) != nil {
		t.Error("QGrams of empty must be nil")
	}
	if QGrams("abc", 0) != nil {
		t.Error("QGrams with q<=0 must be nil")
	}
	if g := QGrams("x", 1); !reflect.DeepEqual(g, []string{"x"}) {
		t.Errorf("QGrams q=1 = %v", g)
	}
}

func TestQGramsCountProperty(t *testing.T) {
	// For nonempty normalized input of rune length n and q>=1:
	// count == n + q - 1 (with padding).
	f := func(s string, qRaw uint8) bool {
		q := int(qRaw%4) + 1
		n := Normalize(s)
		grams := QGrams(s, q)
		if n == "" {
			return grams == nil
		}
		return len(grams) == len([]rune(n))+q-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenSetAndValueSet(t *testing.T) {
	vals := []string{"New York", "new  york", "Boston", ""}
	ts := TokenSet(vals)
	if !reflect.DeepEqual(ts, []string{"new", "york", "boston"}) {
		t.Errorf("TokenSet = %v", ts)
	}
	vs := ValueSet(vals)
	if !reflect.DeepEqual(vs, []string{"new york", "boston"}) {
		t.Errorf("ValueSet = %v", vs)
	}
}

func TestJaccard(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"b", "c", "d"}
	if got := Jaccard(a, b); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if Jaccard(nil, nil) != 0 {
		t.Error("Jaccard of empties must be 0")
	}
	if Jaccard(a, a) != 1 {
		t.Error("Jaccard self must be 1")
	}
	// Duplicates must not change the result.
	if Jaccard([]string{"a", "a", "b", "c"}, b) != 0.5 {
		t.Error("Jaccard must deduplicate")
	}
}

func TestContainmentAndOverlap(t *testing.T) {
	q := []string{"berlin", "barcelona", "boston"}
	d := []string{"berlin", "barcelona", "boston", "new delhi"}
	if got := Containment(q, d); got != 1 {
		t.Errorf("Containment = %v, want 1", got)
	}
	if got := Containment(d, q); got != 0.75 {
		t.Errorf("Containment = %v, want 0.75", got)
	}
	if Containment(nil, d) != 0 {
		t.Error("Containment of empty query must be 0")
	}
	if Overlap(q, d) != 3 {
		t.Errorf("Overlap = %d, want 3", Overlap(q, d))
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	f := func(a, b []string) bool {
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n && !strings.HasSuffix(n, " ") && !strings.HasPrefix(n, " ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
