#!/usr/bin/env bash
# bench_snapshot.sh — run the repository benchmarks and emit BENCH_<N>.json,
# a machine-readable snapshot of the perf trajectory, one file per PR.
#
# Usage:
#   scripts/bench_snapshot.sh [PR_NUMBER]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1x: smoke-speed; use e.g.
#              2s for stable numbers)
#   BENCH      benchmark regex passed to -bench (default '.')
#
# Output schema (one object per benchmark):
#   {"name": "BenchmarkFig1Pipeline", "iterations": 4897,
#    "ns_per_op": 217861, "bytes_per_op": 111525, "allocs_per_op": 1791}
# B/op and allocs/op fields are omitted when -benchmem reports none.
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-1}"
OUT="BENCH_${PR}.json"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . |
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
		entry = sprintf("{\"name\": \"%s\", \"iterations\": %s", name, $2)
		for (i = 3; i < NF; i++) {
			if ($(i+1) == "ns/op")     entry = entry sprintf(", \"ns_per_op\": %s", $i)
			if ($(i+1) == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $i)
			if ($(i+1) == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $i)
		}
		entries[n++] = entry "}"
	}
	END {
		printf "[\n"
		for (i = 0; i < n; i++) printf "  %s%s\n", entries[i], (i < n-1 ? "," : "")
		printf "]\n"
	}
	' >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
