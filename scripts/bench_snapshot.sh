#!/usr/bin/env bash
# bench_snapshot.sh — run the repository benchmarks and emit BENCH_<N>.json,
# a machine-readable snapshot of the perf trajectory, one file per PR.
#
# Usage:
#   scripts/bench_snapshot.sh [PR_NUMBER]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1x: smoke-speed; use e.g.
#              2s for stable numbers)
#   BENCH      benchmark regex passed to -bench (default '.')
#
# Output schema (one object per benchmark):
#   {"name": "BenchmarkFig1Pipeline", "iterations": 4897,
#    "ns_per_op": 217861, "bytes_per_op": 111525, "allocs_per_op": 1791}
# B/op and allocs/op fields are omitted when -benchmem reports none.
# Custom b.ReportMetric units (e.g. "f1", "lsh-ns/op", "cancel-ns/op") are
# captured too, with the unit sanitized into a JSON key ("lsh_ns_per_op").
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-1}"
OUT="BENCH_${PR}.json"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"

# The root package carries the paper-figure benchmarks; loadharness
# carries BenchmarkServeSaturation, whose qps/p50-ns/p99-ns metrics make
# serving throughput a tracked number alongside ns/op; cluster carries
# BenchmarkClusterDiscovery, the HTTP scatter-gather fan-out cost.
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . ./internal/loadharness/ ./internal/cluster/ |
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
		entry = sprintf("{\"name\": \"%s\", \"iterations\": %s", name, $2)
		for (i = 3; i < NF; i++) {
			u = $(i+1)
			if (u == "ns/op")          entry = entry sprintf(", \"ns_per_op\": %s", $i)
			else if (u == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $i)
			else if (u == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $i)
			else if ($i ~ /^[0-9.]+$/ && u ~ /^[A-Za-z][A-Za-z0-9_\/-]*$/) {
				key = u
				gsub(/\/op$/, "_per_op", key)
				gsub(/[\/-]/, "_", key)
				entry = entry sprintf(", \"%s\": %s", key, $i)
			}
		}
		entries[n++] = entry "}"
	}
	END {
		printf "[\n"
		for (i = 0; i < n; i++) printf "  %s%s\n", entries[i], (i < n-1 ? "," : "")
		printf "]\n"
	}
	' >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"

# Delta section: compare against the previous snapshot (the highest
# version-sorted BENCH_*.json other than the one just written) so CI logs
# and PR descriptions can quote the perf trajectory. Informational only —
# the single-CPU CI container is noisy, so there is no hard gate.
prev=""
for f in $(ls BENCH_*.json 2>/dev/null | sort -V); do
	[ "$f" = "$OUT" ] && continue
	prev="$f"
done
if [ -n "$prev" ]; then
	echo ""
	echo "delta vs $prev (negative % = improvement):"
	awk -v prevfile="$prev" '
	/"name"/ {
		match($0, /"name": "[^"]+"/)
		name = substr($0, RSTART + 9, RLENGTH - 10)
		ns = ""; al = ""
		if (match($0, /"ns_per_op": [0-9.]+/))     ns = substr($0, RSTART + 13, RLENGTH - 13)
		if (match($0, /"allocs_per_op": [0-9.]+/)) al = substr($0, RSTART + 17, RLENGTH - 17)
		if (FILENAME == prevfile) {
			pns[name] = ns; pal[name] = al
		} else if (name in pns) {
			line = sprintf("  %-50s", name)
			if (ns != "" && pns[name] > 0)
				line = line sprintf("  ns/op %12.1f -> %12.1f (%+7.1f%%)", pns[name], ns, (ns - pns[name]) * 100.0 / pns[name])
			if (al != "" && pal[name] > 0)
				line = line sprintf("  allocs/op %8d -> %8d (%+7.1f%%)", pal[name], al, (al - pal[name]) * 100.0 / pal[name])
			print line
		}
	}
	' "$prev" "$OUT"
fi
