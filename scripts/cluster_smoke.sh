#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of cluster mode with real
# processes: build the CLI, generate a small CSV lake, start three shard
# servers (`serve -shard-of i/3`) plus a coordinator over them, then drive
# a discover -> integrate round trip and the health/metrics/shardctl
# surfaces through the coordinator. Everything runs on loopback with
# ephemeral ports; all processes are torn down on exit.
#
# Exit nonzero on any failed step — this is the CI gate that the
# shard-per-process deployment path actually composes, not just the Go
# test harnesses.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dialite" ./cmd/dialite

echo "== generate lake"
LAKE="$WORK/lake"
mkdir -p "$LAKE"
# A few overlapping tables from the generator's domain templates, plus the
# query; shard routing is by file-derived table name, so names vary the
# placement.
"$WORK/dialite" generate -prompt "covid vaccination by country" -rows 12 -cols 4 -seed 1 -out "$LAKE/vax_a.csv" >/dev/null
"$WORK/dialite" generate -prompt "covid vaccination by country" -rows 10 -cols 4 -seed 2 -out "$LAKE/vax_b.csv" >/dev/null
"$WORK/dialite" generate -prompt "covid cases by country" -rows 9 -cols 4 -seed 3 -out "$LAKE/cases.csv" >/dev/null
"$WORK/dialite" generate -prompt "covid vaccination by country" -rows 8 -cols 4 -seed 4 -out "$LAKE/vax_c.csv" >/dev/null
"$WORK/dialite" generate -prompt "covid cases by country" -rows 7 -cols 4 -seed 5 -out "$LAKE/cases_b.csv" >/dev/null
"$WORK/dialite" generate -prompt "covid vaccination by country" -rows 6 -cols 4 -seed 9 -out "$WORK/query.csv" >/dev/null

pick_port() {
	python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}

wait_ready() { # base_url
	for _ in $(seq 1 100); do
		if curl -sf "$1/v1/lake/epoch" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	echo "server at $1 never became ready" >&2
	return 1
}

echo "== start 3 shard servers"
SHARD_ADDRS=()
for i in 0 1 2; do
	port="$(pick_port)"
	"$WORK/dialite" serve -lake "$LAKE" -shard-of "$i/3" -addr "127.0.0.1:$port" >"$WORK/shard$i.log" 2>&1 &
	PIDS+=($!)
	SHARD_ADDRS+=("127.0.0.1:$port")
done
for a in "${SHARD_ADDRS[@]}"; do
	wait_ready "http://$a"
done

echo "== start coordinator"
CPORT="$(pick_port)"
COORD="http://127.0.0.1:$CPORT"
ADDR_LIST="$(IFS=,; echo "${SHARD_ADDRS[*]}")"
"$WORK/dialite" serve -coordinator -shard-addrs "$ADDR_LIST" \
	-persist "$WORK/coord" -addr "127.0.0.1:$CPORT" >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "$COORD"

echo "== manifest written"
test -f "$WORK/coord/cluster.json"
jq -e '.shards == 3 and .engine != ""' "$WORK/coord/cluster.json" >/dev/null

echo "== shardctl sees all shards up"
"$WORK/dialite" shardctl -persist "$WORK/coord" | jq -e '[.shards[].status] | all(. == "ok")' >/dev/null

echo "== discover through the coordinator"
python3 - "$WORK/query.csv" >"$WORK/discover_req.json" <<'EOF'
import csv, json, sys
with open(sys.argv[1]) as f:
    rows = list(csv.reader(f))
print(json.dumps({
    "query": {"name": "query", "columns": rows[0], "rows": rows[1:]},
    "queryColumn": 0,
    "k": 5,
}))
EOF
curl -sf -X POST -d @"$WORK/discover_req.json" "$COORD/v1/discover" >"$WORK/discover_resp.json"
jq -e '(.partial // false) == false' "$WORK/discover_resp.json" >/dev/null
jq -e '.integrationSet | length >= 1' "$WORK/discover_resp.json" >/dev/null
echo "   integration set: $(jq -c '.integrationSet' "$WORK/discover_resp.json")"

echo "== integrate the discovered set"
# The integration set names lake tables plus the query itself; the query is
# not in the lake, so it rides along inline.
jq --slurpfile req "$WORK/discover_req.json" \
	'{names: [.integrationSet[] | select(. != "query")], tables: [$req[0].query]}' \
	"$WORK/discover_resp.json" >"$WORK/integrate_req.json"
curl -sf -X POST -d @"$WORK/integrate_req.json" "$COORD/v1/integrate" >"$WORK/integrate_resp.json"
jq -e '.table.rows | length >= 1' "$WORK/integrate_resp.json" >/dev/null
echo "   integrated $(jq '.table.rows | length' "$WORK/integrate_resp.json") rows over $(jq '.table.columns | length' "$WORK/integrate_resp.json") columns"

echo "== health + per-shard metrics"
curl -sf "$COORD/healthz" | jq -e '.status == "ok" and (.shards | length == 3)' >/dev/null
curl -sf "$COORD/metrics" | grep -q 'dialite_shard_calls_total'
curl -sf "$COORD/metrics?format=json&scope=shards" | jq -e 'length == 3' >/dev/null

echo "== cluster smoke OK"
