package dialite

import (
	"io"

	"repro/internal/table"
)

// Table is an in-memory table: named columns (possibly unreliable, as in
// data lakes) over typed rows.
type Table = tableAlias

// Value is a typed cell. Two null kinds are distinguished: missing nulls
// ("±", present in source data) and produced nulls ("⊥", introduced by
// integration).
type Value = table.Value

// Kind enumerates Value types.
type Kind = table.Kind

// Value kinds, re-exported.
const (
	KindNull         = table.Null
	KindProducedNull = table.PNull
	KindString       = table.String
	KindInt          = table.Int
	KindFloat        = table.Float
	KindBool         = table.Bool
)

// NewTable returns an empty table with the given name and headers.
func NewTable(name string, columns ...string) *Table { return table.New(name, columns...) }

// String returns a string cell.
func String(s string) Value { return table.StringValue(s) }

// Int returns an integer cell.
func Int(i int64) Value { return table.IntValue(i) }

// Float returns a floating-point cell.
func Float(f float64) Value { return table.FloatValue(f) }

// Bool returns a boolean cell.
func Bool(b bool) Value { return table.BoolValue(b) }

// Null returns a missing null ("±").
func Null() Value { return table.NullValue() }

// ProducedNull returns a produced null ("⊥").
func ProducedNull() Value { return table.ProducedNull() }

// ParseValue type-infers a raw string into a Value (nulls, ints, floats,
// booleans, strings).
func ParseValue(raw string) Value { return table.Parse(raw) }

// ReadCSV parses CSV (header row first) into a typed table.
func ReadCSV(r io.Reader, name string) (*Table, error) { return table.ReadCSV(r, name) }

// ReadCSVFile reads one CSV file; the table is named after the file.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }

// LoadDir reads every *.csv in dir, sorted by name.
func LoadDir(dir string) ([]*Table, error) { return table.LoadDir(dir) }
